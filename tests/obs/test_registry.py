"""Tests for the metrics registry."""

import threading

import pytest

from repro.obs.registry import (
    BUCKET_BOUNDS,
    NULL_REGISTRY,
    Counter,
    MetricsRegistry,
    NullRegistry,
    parse_name,
    qualify_name,
)


class TestLiveRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc()
        c.inc(4)
        assert reg.counter("a.b").value == 5

    def test_counter_float_increment(self):
        reg = MetricsRegistry()
        reg.counter("e").inc(0.25)
        reg.counter("e").inc(0.5)
        assert reg.counter("e").value == pytest.approx(0.75)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="increase"):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3)
        g.set(7)
        assert g.value == 7.0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.minimum == 1.0
        assert h.maximum == 3.0

    def test_timer_records_duration(self):
        reg = MetricsRegistry()
        t = reg.timer("t")
        with t.time() as handle:
            pass
        assert t.count == 1
        assert handle.elapsed >= 0.0
        assert t.total == pytest.approx(handle.elapsed)

    def test_same_name_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2}
        assert snap["g"] == {"type": "gauge", "value": 1.5}
        assert snap["h"]["count"] == 1
        assert "x" not in snap

    def test_contains_and_len(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        reg.counter("c")
        assert "c" in reg
        assert len(reg) == 1

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NullRegistry().enabled


class TestNullRegistry:
    def test_handles_are_shared_noops(self):
        a = NULL_REGISTRY.counter("a")
        b = NULL_REGISTRY.counter("b")
        assert a is b
        a.inc(100)
        assert a.value == 0

    def test_all_channels_noop(self):
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(5)
        with NULL_REGISTRY.timer("t").time():
            pass
        assert NULL_REGISTRY.snapshot() == {}
        assert len(NULL_REGISTRY) == 0
        assert "g" not in NULL_REGISTRY


class TestLabels:
    def test_labelled_variants_are_distinct(self):
        reg = MetricsRegistry()
        a = reg.histogram("lat", labels={"graph": "cal"})
        b = reg.histogram("lat", labels={"graph": "wiki"})
        assert a is not b
        a.observe(1.0)
        assert b.count == 0

    def test_snapshot_keys_carry_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"graph": "cal", "algorithm": "nearfar"}).inc()
        snap = reg.snapshot()
        [key] = snap
        base, labels = parse_name(key)
        assert base == "hits"
        assert labels == {"graph": "cal", "algorithm": "nearfar"}

    def test_label_order_is_canonical(self):
        assert qualify_name("m", {"b": "2", "a": "1"}) == qualify_name(
            "m", {"a": "1", "b": "2"}
        )


class TestThreadSafety:
    """Satellite 1: concurrent mutation must not lose increments."""

    def test_hammered_counter_loses_nothing(self):
        reg = MetricsRegistry()
        threads_n, per_thread = 8, 5_000
        start = threading.Barrier(threads_n)

        def hammer():
            start.wait()
            c = reg.counter("hammered")
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hammered").value == threads_n * per_thread

    def test_hammered_histogram_keeps_every_sample(self):
        reg = MetricsRegistry()
        threads_n, per_thread = 8, 2_000
        start = threading.Barrier(threads_n)

        def hammer(seed):
            start.wait()
            h = reg.histogram("lat")
            for i in range(per_thread):
                h.observe(0.001 * (seed + 1) * (i % 7 + 1))

        threads = [
            threading.Thread(target=hammer, args=(k,)) for k in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        h = reg.histogram("lat")
        assert h.count == threads_n * per_thread
        # bucket counters must account for every sample too
        assert sum(c for _, c in h.bucket_counts()) == h.count

    def test_concurrent_registration_yields_one_handle(self):
        reg = MetricsRegistry()
        handles = []
        start = threading.Barrier(8)

        def register():
            start.wait()
            handles.append(reg.counter("same.name"))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(reg) == 1
        assert all(h is handles[0] for h in handles)


class TestHistogramQuantiles:
    """Satellite 3: quantile estimation edge cases."""

    def test_empty_histogram_answers_zero(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) == 0.0
        assert h.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_sample_answers_every_quantile_exactly(self):
        h = MetricsRegistry().histogram("h")
        h.observe(0.125)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.125)

    def test_quantiles_clamped_to_observed_range(self):
        h = MetricsRegistry().histogram("h")
        for v in (2.0, 3.0, 4.0):
            h.observe(v)
        assert h.quantile(0.0) >= 2.0
        assert h.quantile(1.0) <= 4.0

    def test_overflow_bucket_tops_out_at_observed_max(self):
        h = MetricsRegistry().histogram("h")
        beyond = BUCKET_BOUNDS[-1] * 10  # past the last finite bound
        h.observe(beyond)
        assert h.quantile(0.99) == pytest.approx(beyond)
        # the +inf bucket index is one past the last finite bound
        [(index, count)] = h.bucket_counts()
        assert index == len(BUCKET_BOUNDS)
        assert count == 1

    def test_zero_and_negative_samples_land_in_first_bucket(self):
        h = MetricsRegistry().histogram("h")
        h.observe(0.0)
        h.observe(-1.0)
        assert h.count == 2
        assert h.minimum == -1.0
        [(index, count)] = h.bucket_counts()
        assert index == 0 and count == 2

    def test_quantile_out_of_range_rejected(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_median_of_uniform_spread_is_plausible(self):
        h = MetricsRegistry().histogram("h")
        for i in range(1, 101):
            h.observe(i / 100.0)
        # log-bucketed estimate: within one bucket's width of the truth
        assert h.quantile(0.5) == pytest.approx(0.5, rel=0.45)
        assert h.quantile(0.95) == pytest.approx(0.95, rel=0.45)


class TestMergeSnapshot:
    """Satellite 3 (continued): merging shipped worker deltas."""

    def test_counters_add_and_histograms_merge(self):
        worker = MetricsRegistry()
        worker.counter("relax").inc(10)
        for v in (0.1, 0.2, 0.4):
            worker.histogram("frontier").observe(v)

        serving = MetricsRegistry()
        serving.counter("relax").inc(5)
        serving.histogram("frontier").observe(0.8)
        serving.merge_snapshot(worker.snapshot())

        assert serving.counter("relax").value == 15
        h = serving.histogram("frontier")
        assert h.count == 4
        assert h.total == pytest.approx(1.5)
        assert h.minimum == pytest.approx(0.1)
        assert h.maximum == pytest.approx(0.8)

    def test_merge_into_empty_registry_preserves_totals(self):
        worker = MetricsRegistry()
        worker.histogram("h").observe(3.0)
        worker.histogram("h").observe(5.0)
        serving = MetricsRegistry()
        serving.merge_snapshot(worker.snapshot())
        h = serving.histogram("h")
        assert h.count == 2 and h.minimum == 3.0 and h.maximum == 5.0
        assert 3.0 <= h.quantile(0.5) <= 5.0

    def test_merge_empty_histogram_is_a_noop(self):
        serving = MetricsRegistry()
        serving.histogram("h").observe(1.0)
        serving.merge_snapshot({"h": {"type": "histogram", "count": 0}})
        assert serving.histogram("h").count == 1

    def test_labelled_keys_round_trip_through_merge(self):
        worker = MetricsRegistry()
        worker.histogram("lat", labels={"graph": "cal"}).observe(0.2)
        serving = MetricsRegistry()
        serving.merge_snapshot(worker.snapshot())
        assert serving.histogram("lat", labels={"graph": "cal"}).count == 1

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="cannot merge"):
            MetricsRegistry().merge_snapshot({"x": {"type": "mystery"}})

    def test_type_conflict_rejected(self):
        serving = MetricsRegistry()
        serving.counter("x").inc()
        with pytest.raises(ValueError, match="already registered"):
            serving.merge_snapshot({"x": {"type": "gauge", "value": 1.0}})
