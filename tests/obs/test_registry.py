"""Tests for the metrics registry."""

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    MetricsRegistry,
    NullRegistry,
)


class TestLiveRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("a.b")
        c.inc()
        c.inc(4)
        assert reg.counter("a.b").value == 5

    def test_counter_float_increment(self):
        reg = MetricsRegistry()
        reg.counter("e").inc(0.25)
        reg.counter("e").inc(0.5)
        assert reg.counter("e").value == pytest.approx(0.75)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="increase"):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3)
        g.set(7)
        assert g.value == 7.0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.minimum == 1.0
        assert h.maximum == 3.0

    def test_timer_records_duration(self):
        reg = MetricsRegistry()
        t = reg.timer("t")
        with t.time() as handle:
            pass
        assert t.count == 1
        assert handle.elapsed >= 0.0
        assert t.total == pytest.approx(handle.elapsed)

    def test_same_name_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2}
        assert snap["g"] == {"type": "gauge", "value": 1.5}
        assert snap["h"]["count"] == 1
        assert "x" not in snap

    def test_contains_and_len(self):
        reg = MetricsRegistry()
        assert len(reg) == 0
        reg.counter("c")
        assert "c" in reg
        assert len(reg) == 1

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NullRegistry().enabled


class TestNullRegistry:
    def test_handles_are_shared_noops(self):
        a = NULL_REGISTRY.counter("a")
        b = NULL_REGISTRY.counter("b")
        assert a is b
        a.inc(100)
        assert a.value == 0

    def test_all_channels_noop(self):
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(5)
        with NULL_REGISTRY.timer("t").time():
            pass
        assert NULL_REGISTRY.snapshot() == {}
        assert len(NULL_REGISTRY) == 0
        assert "g" not in NULL_REGISTRY
