"""Tests for Prometheus text exposition of metric snapshots."""

from repro.obs.exposition import format_prometheus, prometheus_name
from repro.obs.registry import BUCKET_BOUNDS, MetricsRegistry


class TestPrometheusName:
    def test_dots_become_underscores_with_prefix(self):
        assert (
            prometheus_name("service.query.latency")
            == "repro_service_query_latency"
        )

    def test_invalid_chars_sanitized(self):
        assert prometheus_name("a-b c") == "repro_a_b_c"


class TestFormatPrometheus:
    def test_empty_snapshot_empty_text(self):
        assert format_prometheus({}) == ""

    def test_counter_gets_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("service.queries").inc(42)
        text = format_prometheus(reg.snapshot())
        assert "# TYPE repro_service_queries_total counter" in text
        assert "repro_service_queries_total 42" in text

    def test_gauge_plain_value(self):
        reg = MetricsRegistry()
        reg.gauge("pool.pending").set(3.0)
        text = format_prometheus(reg.snapshot())
        assert "# TYPE repro_pool_pending gauge" in text
        assert "repro_pool_pending 3" in text

    def test_labels_rendered_sorted(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"graph": "cal", "algorithm": "nf"}).inc()
        text = format_prometheus(reg.snapshot())
        assert 'repro_hits_total{algorithm="nf",graph="cal"} 1' in text

    def test_histogram_buckets_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.01, 0.01, 0.5):
            h.observe(v)
        lines = format_prometheus(reg.snapshot()).splitlines()
        bucket_lines = [l for l in lines if l.startswith("repro_lat_bucket")]
        # cumulative: each le count >= the previous one
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)
        assert bucket_lines[-1].startswith('repro_lat_bucket{le="+Inf"}')
        assert counts[-1] == 3
        assert "repro_lat_count 3" in lines
        assert any(l.startswith("repro_lat_sum ") for l in lines)

    def test_overflow_samples_counted_only_by_inf(self):
        reg = MetricsRegistry()
        reg.histogram("big").observe(BUCKET_BOUNDS[-1] * 10)
        lines = format_prometheus(reg.snapshot()).splitlines()
        bucket_lines = [l for l in lines if l.startswith("repro_big_bucket")]
        assert bucket_lines == ['repro_big_bucket{le="+Inf"} 1']

    def test_timer_exposed_as_histogram(self):
        reg = MetricsRegistry()
        with reg.timer("t").time():
            pass
        text = format_prometheus(reg.snapshot())
        assert "# TYPE repro_t histogram" in text
        assert "repro_t_count 1" in text

    def test_one_type_header_per_base_name(self):
        reg = MetricsRegistry()
        reg.histogram("lat", labels={"graph": "a"}).observe(1.0)
        reg.histogram("lat", labels={"graph": "b"}).observe(2.0)
        text = format_prometheus(reg.snapshot())
        assert text.count("# TYPE repro_lat histogram") == 1
        assert 'repro_lat_count{graph="a"} 1' in text
        assert 'repro_lat_count{graph="b"} 1' in text
