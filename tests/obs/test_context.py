"""Tests for the active observability context and the hot-path wiring."""

import numpy as np
import pytest

from repro import obs
from repro.core import AdaptiveParams, adaptive_sssp
from repro.gpusim.device import JETSON_TK1
from repro.gpusim.executor import simulate_run
from repro.sssp.nearfar import nearfar_sssp


class TestContext:
    def test_default_is_null(self):
        ctx = obs.current()
        assert not ctx.enabled
        assert not ctx.registry.enabled
        assert not ctx.events.enabled

    def test_use_swaps_and_restores(self):
        reg = obs.MetricsRegistry()
        with obs.use(registry=reg) as ctx:
            assert obs.current() is ctx
            assert obs.get_registry() is reg
            assert ctx.enabled
        assert not obs.current().enabled

    def test_use_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.use(registry=obs.MetricsRegistry()):
                raise RuntimeError("boom")
        assert not obs.current().enabled

    def test_nested_use(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        with obs.use(registry=a):
            with obs.use(registry=b):
                assert obs.get_registry() is b
            assert obs.get_registry() is a

    def test_omitted_channels_stay_null(self):
        with obs.use(registry=obs.MetricsRegistry()) as ctx:
            assert not ctx.events.enabled
            assert not ctx.spans.enabled


class TestNearfarWiring:
    def test_metrics_published(self, small_grid):
        reg = obs.MetricsRegistry()
        with obs.use(registry=reg):
            result, trace = nearfar_sssp(small_grid, 0)
        snap = reg.snapshot()
        assert snap["sssp.iterations"]["value"] == result.iterations
        assert snap["sssp.relaxations"]["value"] == result.relaxations
        assert snap["sssp.parallelism"]["count"] == len(trace)
        assert snap["sssp.parallelism"]["sum"] == trace.total_edges_expanded

    def test_events_streamed(self, small_grid):
        sink = obs.ListSink()
        with obs.use(events=sink):
            result, _ = nearfar_sssp(small_grid, 0)
        starts = sink.of_type("run_start")
        assert len(starts) == 1
        assert starts[0]["v"] == obs.EVENT_SCHEMA_VERSION
        assert starts[0]["algorithm"] == "nearfar"
        iterations = sink.of_type("iteration")
        assert len(iterations) == result.iterations
        assert iterations[0]["k"] == 0
        assert {"x1", "x2", "x3", "x4", "delta", "far_size"} <= set(
            iterations[0]
        )
        assert sink.of_type("run_end")[0]["reached"] == result.num_reached

    def test_disabled_run_publishes_nothing(self, small_grid):
        reg = obs.MetricsRegistry()
        nearfar_sssp(small_grid, 0)  # no context active
        assert reg.snapshot() == {}


class TestAdaptiveWiring:
    def test_metrics_and_controller_timers(self, small_grid):
        reg = obs.MetricsRegistry()
        with obs.use(registry=reg):
            result, trace, controller = adaptive_sssp(
                small_grid, 0, AdaptiveParams(setpoint=200.0)
            )
        snap = reg.snapshot()
        assert snap["sssp.iterations"]["value"] == result.iterations
        assert snap["controller.decisions"]["value"] == controller.decisions
        assert snap["controller.plan_seconds"]["count"] == controller.decisions
        # the far queue published its traffic
        assert snap["farq.inserted"]["value"] >= 0
        assert snap["farq.refreshes"]["value"] > 0

    def test_iteration_events_carry_controller_estimates(self, small_grid):
        sink = obs.ListSink()
        with obs.use(events=sink):
            _, trace, _ = adaptive_sssp(
                small_grid, 0, AdaptiveParams(setpoint=200.0)
            )
        its = sink.of_type("iteration")
        assert len(its) == len(trace)
        assert "d" in its[-1] and "alpha" in its[-1]
        assert its[-1]["delta"] == trace.records[-1].delta

    def test_trace_meta_records_setpoint(self, small_grid):
        _, trace, _ = adaptive_sssp(small_grid, 0, AdaptiveParams(setpoint=200.0))
        assert trace.meta["setpoint"] == 200.0
        assert trace.meta["initial_delta"] > 0

    def test_controller_seconds_from_spans(self, small_grid):
        _, _, controller = adaptive_sssp(
            small_grid, 0, AdaptiveParams(setpoint=200.0)
        )
        assert controller.seconds > 0
        paths = {s.path for s in controller.spans.profile()}
        assert "plan" in paths
        assert controller.seconds == pytest.approx(
            controller.spans.total_seconds
        )


class TestGpusimWiring:
    def test_simulated_energy_metrics(self, small_grid):
        _, trace = nearfar_sssp(small_grid, 0)
        reg = obs.MetricsRegistry()
        with obs.use(registry=reg):
            run = simulate_run(trace, JETSON_TK1)
        snap = reg.snapshot()
        assert snap["gpusim.runs"]["value"] == 1
        assert snap["gpusim.total_energy_j"]["value"] == pytest.approx(
            run.total_energy_j
        )
        per_stage = sum(
            v["value"]
            for k, v in snap.items()
            if k.startswith("gpusim.energy_j.")
        )
        assert per_stage == pytest.approx(run.total_energy_j)

    def test_results_identical_with_and_without_registry(self, small_grid):
        """Observability must never change what is computed."""
        _, trace = nearfar_sssp(small_grid, 0)
        a = simulate_run(trace, JETSON_TK1)
        with obs.use(registry=obs.MetricsRegistry()):
            b = simulate_run(trace, JETSON_TK1)
        assert a.total_seconds == pytest.approx(b.total_seconds)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)

    def test_distances_identical_under_observation(self, small_grid):
        baseline, _ = nearfar_sssp(small_grid, 0)
        with obs.use(
            registry=obs.MetricsRegistry(), events=obs.ListSink()
        ):
            observed, _ = nearfar_sssp(small_grid, 0)
        assert np.array_equal(baseline.dist, observed.dist)
