"""Tests for span-based timing."""

import pytest

from repro.obs.spans import NULL_SPANS, SpanRecorder


class TestSpanRecorder:
    def test_single_span(self):
        rec = SpanRecorder()
        with rec.span("work"):
            pass
        assert rec.count("work") == 1
        assert rec.total("work") >= 0.0

    def test_repeat_accumulates(self):
        rec = SpanRecorder()
        for _ in range(3):
            with rec.span("x"):
                pass
        assert rec.count("x") == 3

    def test_nesting_builds_paths(self):
        rec = SpanRecorder()
        with rec.span("plan"):
            with rec.span("bootstrap"):
                pass
        paths = [s.path for s in rec.profile()]
        assert paths == ["plan", "plan/bootstrap"]
        assert rec.count("plan/bootstrap") == 1

    def test_total_seconds_counts_top_level_only(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        # inner time is already inside outer; double counting would
        # exceed the outer total
        assert rec.total_seconds == pytest.approx(rec.total("outer"))

    def test_elapsed_exposed_after_exit(self):
        rec = SpanRecorder()
        sp = rec.span("x")
        with sp:
            pass
        assert sp.elapsed >= 0.0
        assert rec.total("x") == pytest.approx(sp.elapsed)

    def test_exception_still_recorded(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("x"):
                raise RuntimeError("boom")
        assert rec.count("x") == 1
        # the stack unwound: a new top-level span is not nested under x
        with rec.span("y"):
            pass
        assert rec.count("y") == 1

    def test_slash_in_name_rejected(self):
        with pytest.raises(ValueError, match="span names"):
            SpanRecorder().span("a/b")

    def test_profile_depth(self):
        rec = SpanRecorder()
        with rec.span("a"):
            with rec.span("b"):
                pass
        by_path = {s.path: s for s in rec.profile()}
        assert by_path["a"].depth == 0
        assert by_path["a/b"].depth == 1

    def test_unknown_path_zero(self):
        rec = SpanRecorder()
        assert rec.total("nope") == 0.0
        assert rec.count("nope") == 0


class TestNullSpans:
    def test_noop(self):
        with NULL_SPANS.span("anything"):
            pass
        assert NULL_SPANS.profile() == []
        assert NULL_SPANS.total_seconds == 0.0
        assert not NULL_SPANS.enabled
