"""Tests for the structured event log."""

import json

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    JsonlSink,
    ListSink,
    NullEventSink,
)


class TestListSink:
    def test_collects_in_order(self):
        sink = ListSink()
        sink.emit({"type": "a", "k": 0})
        sink.emit({"type": "b", "k": 1})
        assert [e["type"] for e in sink.events] == ["a", "b"]

    def test_of_type(self):
        sink = ListSink()
        sink.emit({"type": "iteration", "k": 0})
        sink.emit({"type": "run_end"})
        assert len(sink.of_type("iteration")) == 1


class TestJsonlSink:
    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "run_start", "v": EVENT_SCHEMA_VERSION})
            sink.emit({"type": "iteration", "k": 0, "x1": 3})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["type"] == "run_start"
        assert json.loads(lines[1])["x1"] == 3

    def test_streams_before_close(self, tmp_path):
        """Events are on disk the moment they are emitted (flushed)."""
        path = tmp_path / "e.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "iteration", "k": 0})
        assert json.loads(path.read_text().splitlines()[0])["k"] == 0
        sink.close()

    def test_nan_becomes_null(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "iteration", "d": float("nan")})
        payload = json.loads(path.read_text())
        assert payload["d"] is None

    def test_counts_events(self, tmp_path):
        with JsonlSink(tmp_path / "e.jsonl") as sink:
            for k in range(5):
                sink.emit({"k": k})
            assert sink.count == 5

    def test_accepts_open_file_object(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with path.open("w") as f:
            sink = JsonlSink(f)
            sink.emit({"k": 1})
            sink.close()  # must not close a file it does not own
            assert not f.closed
        assert json.loads(path.read_text())["k"] == 1


class TestNullSink:
    def test_disabled_and_silent(self):
        sink = NullEventSink()
        assert not sink.enabled
        sink.emit({"anything": 1})
        sink.close()
