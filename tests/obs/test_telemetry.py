"""Tests for trace propagation: contexts, sampling, worker capture."""

import pickle

import pytest

from repro import obs
from repro.obs.registry import BUCKET_BOUNDS
from repro.obs.telemetry import (
    TELEMETRY_WIRE_VERSION,
    TraceContext,
    TraceSampler,
    capture_task,
    emit_span,
    merge_payload,
)


class TestTraceContext:
    def test_mint_is_a_root(self):
        ctx = TraceContext.mint()
        assert ctx.trace_id and ctx.span_id
        assert ctx.parent_id is None
        assert ctx.sampled is True

    def test_mint_unique_ids(self):
        a, b = TraceContext.mint(), TraceContext.mint()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_keeps_trace_reparents_span(self):
        root = TraceContext.mint(sampled=False)
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert child.sampled is False  # the decision sticks down the chain

    def test_wire_round_trip(self):
        ctx = TraceContext.mint().child()
        wire = ctx.to_wire()
        assert pickle.loads(pickle.dumps(wire)) == wire  # envelope-safe
        assert TraceContext.from_wire(wire) == ctx

    def test_from_wire_none_passes_through(self):
        assert TraceContext.from_wire(None) is None


class TestTraceSampler:
    def test_rate_one_samples_everything(self):
        sampler = TraceSampler(1.0)
        assert all(sampler.sample() for _ in range(10))

    def test_rate_zero_samples_nothing(self):
        sampler = TraceSampler(0.0)
        assert not any(sampler.sample() for _ in range(10))

    def test_half_rate_is_every_second_deterministically(self):
        decisions = [TraceSampler(0.5).sample() for _ in range(1)]
        assert decisions == [False]
        sampler = TraceSampler(0.5)
        assert [sampler.sample() for _ in range(6)] == [
            False, True, False, True, False, True,
        ]

    def test_quarter_rate_fires_every_fourth(self):
        sampler = TraceSampler(0.25)
        fired = [i for i in range(12) if sampler.sample()]
        assert fired == [3, 7, 11]

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TraceSampler(1.5)
        with pytest.raises(ValueError):
            TraceSampler(-0.1)


class TestEmitSpan:
    def test_emits_for_sampled_trace(self):
        sink = obs.ListSink()
        ctx = TraceContext.mint()
        emit_span(sink, ctx, "engine/query", 0.25, qid=3)
        [event] = sink.events
        assert event["type"] == "span"
        assert event["trace"] == ctx.trace_id
        assert event["span"] == ctx.span_id
        assert event["name"] == "engine/query"
        assert event["seconds"] == 0.25
        assert event["qid"] == 3

    def test_silent_when_unsampled_or_missing(self):
        sink = obs.ListSink()
        emit_span(sink, TraceContext.mint(sampled=False), "x", 0.1)
        emit_span(sink, None, "x", 0.1)
        assert sink.events == []


class TestCaptureTask:
    def _envelope(self, **over):
        ctx = TraceContext.mint()
        env = {"ctx": ctx.child().to_wire(), "enqueue_ts": None}
        env.update(over)
        return env

    def test_result_and_payload_shape(self):
        result, payload = capture_task(self._envelope(), lambda: 42)
        assert result == 42
        assert payload["v"] == TELEMETRY_WIRE_VERSION
        assert payload["ctx"]["trace_id"]
        assert payload["compute_seconds"] >= 0.0
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_task_metrics_land_in_payload_not_caller_context(self):
        outer = obs.MetricsRegistry()

        def task():
            obs.get_registry().counter("kernel.work").inc(7)
            return "ok"

        with obs.use(registry=outer):
            _, payload = capture_task(self._envelope(), task)
        assert payload["metrics"]["kernel.work"]["value"] == 7
        assert "kernel.work" not in outer  # buffered, not shared

    def test_task_spans_rooted_under_task(self):
        def task():
            with obs.get_spans().span("kernel"):
                pass

        _, payload = capture_task(self._envelope(), task)
        paths = [row["path"] for row in payload["spans"]]
        assert paths == ["task", "task/kernel"]

    def test_unsampled_trace_drops_buffered_events(self):
        root = TraceContext.mint(sampled=False)
        env = {"ctx": root.child().to_wire(), "enqueue_ts": None}

        def task():
            obs.get_events().emit({"type": "run_start"})

        _, payload = capture_task(env, task)
        assert payload["events"] == []
        # ...but the metric delta still ships for unsampled traces
        assert payload["metrics"] is not None

    def test_queue_wait_from_enqueue_ts(self):
        import time

        env = self._envelope(enqueue_ts=time.time() - 0.05)
        _, payload = capture_task(env, lambda: None)
        assert payload["queue_wait_seconds"] >= 0.04


class TestMergePayload:
    def _captured(self, sampled=True):
        root = TraceContext.mint(sampled=sampled)
        env = {"ctx": root.child().to_wire(), "enqueue_ts": None}

        def task():
            obs.get_registry().counter("sssp.relaxations").inc(10)
            obs.get_registry().histogram("sssp.frontier").observe(5.0)
            obs.get_events().emit({"type": "run_start", "algorithm": "nearfar"})
            with obs.get_spans().span("kernel"):
                pass

        _, payload = capture_task(env, task)
        return root, payload

    def test_metrics_merge_into_serving_registry(self):
        _, payload = self._captured()
        registry = obs.MetricsRegistry()
        registry.counter("sssp.relaxations").inc(3)
        merge_payload(
            payload,
            registry=registry,
            events=obs.ListSink(),
            spans=obs.SpanRecorder(),
        )
        assert registry.counter("sssp.relaxations").value == 13
        assert registry.histogram("sssp.frontier").count == 1

    def test_spans_reroot_under_worker(self):
        _, payload = self._captured()
        spans = obs.SpanRecorder()
        merge_payload(
            payload,
            registry=obs.MetricsRegistry(),
            events=obs.ListSink(),
            spans=spans,
        )
        paths = [s.path for s in spans.profile()]
        assert "worker/task" in paths
        assert "worker/task/kernel" in paths

    def test_sampled_events_replay_with_trace_and_worker_stamp(self):
        root, payload = self._captured()
        sink = obs.ListSink()
        merge_payload(
            payload,
            registry=obs.MetricsRegistry(),
            events=sink,
            spans=obs.SpanRecorder(),
        )
        replayed = sink.of_type("run_start")
        assert len(replayed) == 1
        assert replayed[0]["trace"] == root.trace_id
        assert replayed[0]["worker"] is True
        span_names = [e["name"] for e in sink.of_type("span")]
        assert "worker/task" in span_names
        assert "worker/task/kernel" in span_names

    def test_unsampled_merges_metrics_but_stays_silent(self):
        _, payload = self._captured(sampled=False)
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        merge_payload(
            payload,
            registry=registry,
            events=sink,
            spans=obs.SpanRecorder(),
        )
        assert registry.counter("sssp.relaxations").value == 10
        assert sink.events == []

    def test_returns_worker_context(self):
        root, payload = self._captured()
        ctx = merge_payload(
            payload,
            registry=obs.MetricsRegistry(),
            events=obs.ListSink(),
            spans=obs.SpanRecorder(),
        )
        assert ctx is not None and ctx.trace_id == root.trace_id


class TestThreadScopedContext:
    def test_thread_scope_shadows_only_this_thread(self):
        import threading

        outer = obs.MetricsRegistry()
        seen = {}

        def worker():
            # no thread-local override here: sees the process context
            seen["registry"] = obs.get_registry()

        with obs.use(registry=outer):
            inner = obs.MetricsRegistry()
            with obs.use(registry=inner, scope="thread"):
                assert obs.get_registry() is inner
                t = threading.Thread(target=worker)
                t.start()
                t.join()
            assert obs.get_registry() is outer
        assert seen["registry"] is outer
