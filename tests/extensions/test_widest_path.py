"""Tests for the widest-path generalisation of the controller."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.extensions.widest_path import (
    WidestPathParams,
    adaptive_widest_path,
    widest_path,
    widest_path_reference,
)
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, path_graph


def _assert_widths_equal(a: np.ndarray, b: np.ndarray) -> None:
    # +inf (source) and -inf (unreachable) must match positionally
    assert np.array_equal(np.isposinf(a), np.isposinf(b))
    assert np.array_equal(np.isneginf(a), np.isneginf(b))
    finite = np.isfinite(a)
    assert np.allclose(a[finite], b[finite])


class TestReference:
    def test_path_bottleneck(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3], [5.0, 2.0, 9.0])
        w = widest_path_reference(g, 0)
        assert w[1] == 5.0
        assert w[2] == 2.0
        assert w[3] == 2.0  # bottleneck carried through

    def test_prefers_wider_route(self):
        # 0->3 direct width 1; 0->1->3 width 4
        g = CSRGraph.from_edges(4, [0, 0, 1], [3, 1, 3], [1.0, 9.0, 4.0])
        w = widest_path_reference(g, 0)
        assert w[3] == 4.0

    def test_unreachable(self):
        g = path_graph(3)
        w = widest_path_reference(g, 2)
        assert np.isneginf(w[:2]).all()
        assert np.isposinf(w[2])


class TestNearFarWidest:
    @pytest.mark.parametrize("delta", [0.05, 0.3, 2.0, 100.0])
    def test_exact_for_any_delta(self, small_grid, delta):
        result, _ = widest_path(small_grid, 0, delta)
        _assert_widths_equal(widest_path_reference(small_grid, 0), result.dist)

    def test_exact_on_rmat(self, small_rmat):
        result, _ = widest_path(small_rmat, 0)
        _assert_widths_equal(widest_path_reference(small_rmat, 0), result.dist)

    def test_trace_counters(self, small_grid):
        result, trace = widest_path(small_grid, 0)
        assert len(trace) == result.iterations
        for rec in trace:
            assert rec.x3 <= rec.x2

    def test_rejects_nonpositive_weights(self):
        g = CSRGraph.from_edges(2, [0], [1], [0.0])
        with pytest.raises(ValueError, match="positive"):
            widest_path(g, 0)

    def test_rejects_bad_delta(self, small_grid):
        with pytest.raises(ValueError):
            widest_path(small_grid, 0, 0.0)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_graphs_match_oracle(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        m = int(rng.integers(0, 120))
        g = CSRGraph.from_edges(
            n,
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            rng.uniform(0.1, 10.0, size=m),
        )
        s = int(rng.integers(0, n))
        result, _ = widest_path(g, s)
        _assert_widths_equal(widest_path_reference(g, s), result.dist)


class TestAdaptiveWidest:
    @pytest.mark.parametrize("setpoint", [10.0, 200.0, 1e6])
    def test_exact_for_any_setpoint(self, small_grid, setpoint):
        result, _, _ = adaptive_widest_path(
            small_grid, 0, WidestPathParams(setpoint=setpoint)
        )
        _assert_widths_equal(widest_path_reference(small_grid, 0), result.dist)

    def test_exact_on_rmat(self, small_rmat):
        result, _, _ = adaptive_widest_path(
            small_rmat, 0, WidestPathParams(setpoint=500.0)
        )
        _assert_widths_equal(widest_path_reference(small_rmat, 0), result.dist)

    def test_controller_steers_parallelism(self):
        """The SSSP controller, unchanged, raises widest-path
        parallelism toward a higher set-point."""
        g = grid_road_network(60, 60, seed=6)
        _, t_low, _ = adaptive_widest_path(g, 0, WidestPathParams(setpoint=100.0))
        _, t_high, _ = adaptive_widest_path(g, 0, WidestPathParams(setpoint=1200.0))
        assert t_high.average_parallelism > 1.5 * t_low.average_parallelism
        assert t_high.num_iterations < t_low.num_iterations

    def test_controller_learns(self, small_grid):
        _, _, ctrl = adaptive_widest_path(
            small_grid, 0, WidestPathParams(setpoint=100.0)
        )
        assert ctrl.advance_model.updates > 0
        assert ctrl.d > 0

    def test_max_iterations(self, small_grid):
        result, _, _ = adaptive_widest_path(
            small_grid, 0, WidestPathParams(setpoint=100.0, max_iterations=2)
        )
        assert result.iterations == 2

    def test_param_validation(self):
        with pytest.raises(ValueError):
            WidestPathParams(setpoint=0.0)
        with pytest.raises(ValueError):
            WidestPathParams(setpoint=1.0, initial_delta=-1.0)
