"""Shared fixtures: small deterministic graphs every suite reuses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    erdos_renyi,
    grid_road_network,
    path_graph,
    random_weighted_graph,
    rmat,
    star_graph,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def triangle() -> CSRGraph:
    """3-cycle with asymmetric weights; shortest paths are non-trivial."""
    return CSRGraph.from_edges(
        3,
        src=[0, 1, 2, 0],
        dst=[1, 2, 0, 2],
        weight=[1.0, 2.0, 4.0, 10.0],
        name="triangle",
    )


@pytest.fixture
def diamond() -> CSRGraph:
    """Two parallel routes 0->3: direct-ish (0-1-3, cost 5) vs (0-2-3, cost 3)."""
    return CSRGraph.from_edges(
        4,
        src=[0, 0, 1, 2],
        dst=[1, 2, 3, 3],
        weight=[4.0, 1.0, 1.0, 2.0],
        name="diamond",
    )


@pytest.fixture
def small_path() -> CSRGraph:
    return path_graph(10)


@pytest.fixture
def small_star() -> CSRGraph:
    return star_graph(10)


@pytest.fixture
def small_grid() -> CSRGraph:
    return grid_road_network(8, 8, seed=3)


@pytest.fixture
def small_rmat() -> CSRGraph:
    return rmat(8, edge_factor=8, seed=5)


@pytest.fixture
def small_er() -> CSRGraph:
    return erdos_renyi(200, 4.0, seed=9)


@pytest.fixture
def disconnected() -> CSRGraph:
    """Two components: {0,1} and {2,3}; vertex 4 isolated."""
    return CSRGraph.from_edges(
        5, src=[0, 1, 2, 3], dst=[1, 0, 3, 2], weight=[1.0, 1.0, 2.0, 2.0]
    )


@pytest.fixture
def random_graphs() -> list[CSRGraph]:
    """A batch of assorted random digraphs for cross-validation sweeps."""
    return [
        random_weighted_graph(n, m, seed=seed, max_weight=mw, integer=integer)
        for (n, m, seed, mw, integer) in [
            (1, 0, 0, 1.0, False),
            (2, 1, 1, 5.0, False),
            (10, 30, 2, 10.0, False),
            (50, 200, 3, 100.0, True),
            (100, 50, 4, 10.0, False),  # sparse, mostly disconnected
            (120, 1200, 5, 3.0, False),
            (200, 800, 6, 50.0, True),
        ]
    ]
