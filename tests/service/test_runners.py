"""Tests for the wire-name -> algorithm dispatch."""

import pytest

from repro.service.runners import algorithm_names, run_algorithm, validate_params
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import assert_distances_close


class TestValidation:
    def test_known_names(self):
        assert "dijkstra" in algorithm_names()
        assert "adaptive" in algorithm_names()

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            validate_params("spfa", {})

    def test_unknown_param_named(self):
        with pytest.raises(ValueError, match=r"\['setpoint'\]"):
            validate_params("nearfar", {"setpoint": 10})

    def test_source_out_of_range(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            run_algorithm(small_grid, -1, "dijkstra")


class TestDispatch:
    @pytest.mark.parametrize(
        "algorithm,params",
        [
            ("dijkstra", {}),
            ("bellman-ford", {}),
            ("delta-stepping", {"delta": 3.0}),
            ("nearfar", {"delta": 3.0}),
            ("adaptive", {"setpoint": 50.0}),
            ("kla", {"k": 2}),
        ],
    )
    def test_every_algorithm_is_exact(self, small_grid, algorithm, params):
        oracle = dijkstra(small_grid, 0)
        result = run_algorithm(small_grid, 0, algorithm, params)
        assert_distances_close(oracle, result)

    def test_defaults_apply(self, small_grid):
        result = run_algorithm(small_grid, 0, "nearfar")
        assert result.num_reached > 1
