"""Tests for the wire-name -> algorithm dispatch."""

import pytest

import numpy as np

from repro.service.runners import (
    BATCHED_ALGORITHMS,
    algorithm_names,
    run_algorithm,
    run_algorithm_batch,
    validate_params,
)
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import assert_distances_close


class TestValidation:
    def test_known_names(self):
        assert "dijkstra" in algorithm_names()
        assert "adaptive" in algorithm_names()

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            validate_params("spfa", {})

    def test_unknown_param_named(self):
        with pytest.raises(ValueError, match=r"\['setpoint'\]"):
            validate_params("nearfar", {"setpoint": 10})

    def test_source_out_of_range(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            run_algorithm(small_grid, -1, "dijkstra")


class TestDispatch:
    @pytest.mark.parametrize(
        "algorithm,params",
        [
            ("dijkstra", {}),
            ("bellman-ford", {}),
            ("delta-stepping", {"delta": 3.0}),
            ("nearfar", {"delta": 3.0}),
            ("adaptive", {"setpoint": 50.0}),
            ("kla", {"k": 2}),
        ],
    )
    def test_every_algorithm_is_exact(self, small_grid, algorithm, params):
        oracle = dijkstra(small_grid, 0)
        result = run_algorithm(small_grid, 0, algorithm, params)
        assert_distances_close(oracle, result)

    def test_defaults_apply(self, small_grid):
        result = run_algorithm(small_grid, 0, "nearfar")
        assert result.num_reached > 1


class TestBatchDispatch:
    def test_nearfar_is_batched(self):
        assert "nearfar" in BATCHED_ALGORITHMS

    def test_batched_kernel_matches_singles(self, small_grid):
        sources = [0, 7, 21]
        batch = run_algorithm_batch(small_grid, sources, "nearfar")
        for s, result in zip(sources, batch):
            single = run_algorithm(small_grid, s, "nearfar")
            assert np.array_equal(result.dist, single.dist)
            assert result.extra["batched"] is True

    def test_delta_param_threads_through(self, small_grid):
        [result] = run_algorithm_batch(
            small_grid, [0], "nearfar", {"delta": 2.5}
        )
        assert result.extra["delta"] == 2.5
        single = run_algorithm(small_grid, 0, "nearfar", {"delta": 2.5})
        assert np.array_equal(result.dist, single.dist)

    def test_unbatched_algorithm_loops(self, small_grid):
        sources = [0, 5]
        batch = run_algorithm_batch(small_grid, sources, "dijkstra")
        assert len(batch) == 2
        for s, result in zip(sources, batch):
            assert result.algorithm == "dijkstra"
            assert "batched" not in result.extra
            assert_distances_close(dijkstra(small_grid, s), result)

    def test_results_in_source_order(self, small_grid):
        sources = [13, 2, 40]
        batch = run_algorithm_batch(small_grid, sources, "nearfar")
        for s, result in zip(sources, batch):
            assert result.source == s

    def test_empty_batch_rejected(self, small_grid):
        with pytest.raises(ValueError, match="at least one"):
            run_algorithm_batch(small_grid, [], "nearfar")

    def test_bad_source_rejected(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            run_algorithm_batch(
                small_grid, [0, small_grid.num_nodes], "nearfar"
            )

    def test_bad_params_rejected(self, small_grid):
        with pytest.raises(ValueError, match=r"\['setpoint'\]"):
            run_algorithm_batch(small_grid, [0], "nearfar", {"setpoint": 1})
