"""Graph image + engine config wire formats for shard workers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import grid_road_network
from repro.resilience import (
    BreakerConfig,
    FaultPlan,
    RetryPolicy,
    ScheduledFaultPlan,
)
from repro.service.serial import (
    GraphTransferError,
    engine_config_from_wire,
    engine_config_to_wire,
    pack_graph,
    unpack_graph,
)


@pytest.fixture(scope="module")
def graph():
    return grid_road_network(8, 8, seed=11)


def test_pack_unpack_round_trips_graph_exactly(graph):
    blob = pack_graph("g", graph)
    assert isinstance(blob, bytes)
    graph_id, got = unpack_graph(blob)
    assert graph_id == "g"
    assert got.name == graph.name
    assert got.num_nodes == graph.num_nodes
    assert got.num_edges == graph.num_edges
    np.testing.assert_array_equal(got.indptr, graph.indptr)
    np.testing.assert_array_equal(got.indices, graph.indices)
    np.testing.assert_array_equal(got.weights, graph.weights)
    assert got.fingerprint() == graph.fingerprint()


def test_unpack_rejects_bad_magic(graph):
    blob = bytearray(pack_graph("g", graph))
    blob[:4] = b"NOPE"
    with pytest.raises(GraphTransferError):
        unpack_graph(bytes(blob))


def test_unpack_rejects_corrupted_weights(graph):
    blob = bytearray(pack_graph("g", graph))
    blob[-5] ^= 0xFF  # flip a bit inside the weights array
    with pytest.raises(GraphTransferError, match="fingerprint"):
        unpack_graph(bytes(blob))


def test_unpack_rejects_truncated_image(graph):
    blob = pack_graph("g", graph)
    with pytest.raises(GraphTransferError):
        unpack_graph(blob[: len(blob) // 2])


def test_engine_config_round_trips_scalars():
    kwargs = {
        "mode": "thread",
        "max_workers": 3,
        "timeout": 2.5,
        "cache_size": 64,
        "max_batch": 4,
    }
    wire = engine_config_to_wire(kwargs)
    assert engine_config_from_wire(wire) == kwargs


def test_engine_config_round_trips_policies():
    kwargs = {
        "retry": RetryPolicy(max_attempts=4, base_delay=0.01),
        "breaker": BreakerConfig(failure_threshold=7),
        "fault_plan": ScheduledFaultPlan(at=(2,), kind="worker_kill"),
    }
    got = engine_config_from_wire(engine_config_to_wire(kwargs))
    assert got["retry"] == kwargs["retry"]
    assert got["breaker"] == kwargs["breaker"]
    assert got["fault_plan"] == kwargs["fault_plan"]


def test_engine_config_round_trips_seeded_fault_plan():
    kwargs = {"fault_plan": FaultPlan(rate=0.5, seed=9, kinds=("crash",))}
    got = engine_config_from_wire(engine_config_to_wire(kwargs))
    assert got["fault_plan"] == kwargs["fault_plan"]


def test_engine_config_drops_labels_keeps_none_scalars():
    # labels are per-process (the worker's registry is never merged);
    # None scalars survive because timeout=None is a real engine value
    wire = engine_config_to_wire(
        {"labels": {"shard": "0"}, "timeout": None, "mode": "thread"}
    )
    assert engine_config_from_wire(wire) == {"mode": "thread", "timeout": None}


def test_engine_config_rejects_unknown_keys():
    with pytest.raises(ValueError, match="wormhole"):
        engine_config_to_wire({"wormhole": True})
