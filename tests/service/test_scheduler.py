"""Tests for the coalescing scheduler's bounded batching window."""

import threading

import pytest

from repro import obs
from repro.service import CoalescingScheduler, QueryEngine, SSSPQuery
from repro.sssp.dijkstra import dijkstra


@pytest.fixture
def engine(catalog):
    with QueryEngine(catalog, max_batch=8) as eng:
        yield eng


class TestCoalescingScheduler:
    def test_full_window_flushes_as_one_batch(self, catalog, grid):
        sink = obs.ListSink()
        with obs.use(events=sink):
            with QueryEngine(catalog, max_batch=8) as engine:
                with CoalescingScheduler(
                    engine, max_batch=3, max_wait_ms=10_000.0
                ) as sched:
                    futures = [
                        sched.submit(SSSPQuery("grid", s, "nearfar"))
                        for s in (0, 5, 9)
                    ]
                    responses = [f.result(timeout=30) for f in futures]
        assert all(r.ok for r in responses)
        assert responses[0].reached == dijkstra(grid, 0).num_reached
        [dispatch] = sink.of_type("batch_dispatch")
        assert dispatch["batch_size"] == 3
        assert sched.stats()["flushes"] == 1

    def test_deadline_flushes_partial_window(self, engine):
        with CoalescingScheduler(engine, max_batch=64, max_wait_ms=5.0) as sched:
            future = sched.submit(SSSPQuery("grid", 0, "nearfar"))
            response = future.result(timeout=30)
        assert response.ok
        assert sched.stats()["flushes"] >= 1

    def test_close_flushes_pending(self, engine):
        sched = CoalescingScheduler(engine, max_batch=64, max_wait_ms=60_000.0)
        future = sched.submit(SSSPQuery("grid", 4, "nearfar"))
        sched.close()
        assert future.result(timeout=30).ok
        assert sched.stats()["pending"] == 0

    def test_run_is_submit_plus_wait(self, engine, grid):
        with CoalescingScheduler(engine, max_batch=4, max_wait_ms=5.0) as sched:
            response = sched.run(SSSPQuery("grid", 0, "nearfar"))
        assert response.ok
        assert response.reached == dijkstra(grid, 0).num_reached

    def test_concurrent_submitters_share_a_batch(self, catalog):
        sink = obs.ListSink()
        results = {}
        barrier = threading.Barrier(3)

        def worker(src):
            barrier.wait()
            results[src] = sched.run(SSSPQuery("grid", src, "nearfar"))

        with obs.use(events=sink):
            with QueryEngine(catalog, max_batch=8) as engine:
                with CoalescingScheduler(
                    engine, max_batch=3, max_wait_ms=10_000.0
                ) as sched:
                    threads = [
                        threading.Thread(target=worker, args=(s,))
                        for s in (0, 5, 9)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join(timeout=30)
        assert all(r.ok for r in results.values())
        [dispatch] = sink.of_type("batch_dispatch")
        assert sorted(dispatch["sources"]) == [0, 5, 9]

    def test_error_queries_resolve_not_hang(self, engine):
        with CoalescingScheduler(engine, max_batch=4, max_wait_ms=5.0) as sched:
            response = sched.run(SSSPQuery("nope", 0, "nearfar"))
        assert not response.ok
        assert "unknown graph" in response.error

    def test_stats_shape(self, engine):
        with CoalescingScheduler(engine, max_batch=4, max_wait_ms=2.0) as sched:
            sched.run(SSSPQuery("grid", 0, "nearfar"))
            stats = sched.stats()
        assert stats["max_batch"] == 4
        assert stats["max_wait_ms"] == 2.0
        assert stats["submitted"] == 1

    def test_submit_after_close_rejected(self, engine):
        sched = CoalescingScheduler(engine, max_batch=4, max_wait_ms=2.0)
        sched.close()
        with pytest.raises(RuntimeError, match="closed"):
            sched.submit(SSSPQuery("grid", 0, "nearfar"))

    def test_invalid_window_rejected(self, engine):
        with pytest.raises(ValueError):
            CoalescingScheduler(engine, max_batch=0)
        with pytest.raises(ValueError):
            CoalescingScheduler(engine, max_wait_ms=-1.0)
