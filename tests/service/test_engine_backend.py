"""Engine-level backend selection: injection, labels, stats, wire."""

import numpy as np
import pytest

from repro import obs
from repro.obs.registry import parse_name
from repro.service import QueryEngine, SSSPQuery
from repro.service.serial import engine_config_from_wire, engine_config_to_wire


class TestEngineBackend:
    def test_default_is_unset(self, catalog, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        with QueryEngine(catalog) as engine:
            assert engine.backend is None
            assert engine.stats()["backend"] is None

    def test_explicit_backend_recorded(self, catalog):
        with QueryEngine(catalog, backend="numpy") as engine:
            assert engine.backend == "numpy"
            assert engine.stats()["backend"] == "numpy"
            response = engine.run(SSSPQuery("grid", 0, "nearfar"))
            assert response.ok, response.error

    def test_env_default(self, catalog, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        with QueryEngine(catalog) as engine:
            assert engine.backend == "numpy"

    def test_arg_beats_env(self, catalog, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "bogus")
        with QueryEngine(catalog, backend="numpy") as engine:
            assert engine.backend == "numpy"

    def test_unknown_backend_fails_construction(self, catalog):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            QueryEngine(catalog, backend="cuda")

    def test_unknown_backend_param_rejected_per_query(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(
                SSSPQuery("grid", 0, "nearfar", {"backend": "cuda"})
            )
        assert not response.ok
        assert "unknown kernel backend 'cuda'" in response.error
        assert "numpy" in response.error  # lists what is registered

    def test_backend_param_rejected_for_other_algorithms(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(
                SSSPQuery("grid", 0, "dijkstra", {"backend": "numpy"})
            )
        assert not response.ok
        assert "does not accept" in response.error

    def test_backend_distances_match_default(self, catalog, grid):
        plain = QueryEngine(catalog)
        with plain:
            ref = plain.run(SSSPQuery("grid", 5, "nearfar"))
        with QueryEngine(catalog, backend="numpy") as engine:
            got = engine.run(SSSPQuery("grid", 5, "nearfar"))
        assert got.ok and ref.ok
        assert got.reached == ref.reached
        assert got.relaxations == ref.relaxations
        assert got.max_dist == ref.max_dist

    def test_batched_path_with_backend(self, catalog):
        with QueryEngine(catalog, backend="numpy", max_batch=8) as engine:
            queries = [
                SSSPQuery("grid", s, "nearfar") for s in range(6)
            ]
            responses = engine.run_many(queries)
        assert all(r.ok for r in responses)


class TestBackendMetricsLabel:
    def test_query_latency_carries_backend_label(self, catalog):
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry):
            with QueryEngine(catalog, backend="numpy") as engine:
                response = engine.run(SSSPQuery("grid", 0, "nearfar"))
                assert response.ok
        keys = [
            key
            for key in registry.snapshot()
            if key.startswith("service.query.latency")
        ]
        assert keys, "no latency histogram recorded"
        for key in keys:
            _, labels = parse_name(key)
            assert labels["backend"] == "numpy"
            assert labels["algorithm"] == "nearfar"

    def test_no_backend_no_label(self, catalog, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry):
            with QueryEngine(catalog) as engine:
                assert engine.run(SSSPQuery("grid", 0, "nearfar")).ok
        keys = [
            key
            for key in registry.snapshot()
            if key.startswith("service.query.latency")
        ]
        assert keys
        for key in keys:
            _, labels = parse_name(key)
            assert "backend" not in labels


class TestBackendOnTheWire:
    def test_round_trips_engine_config(self):
        wire = engine_config_to_wire(
            {"mode": "thread", "max_batch": 4, "backend": "numpy"}
        )
        assert wire["backend"] == "numpy"
        kwargs = engine_config_from_wire(wire)
        assert kwargs["backend"] == "numpy"

    def test_process_shards_accept_backend(self, catalog):
        from repro.net import ShardManager

        with ShardManager(catalog, shards=2, backend="numpy") as manager:
            response = manager.run(SSSPQuery("grid", 0, "nearfar"))
        assert response.ok, response.error
