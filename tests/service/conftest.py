"""Service-suite fixtures: a tiny catalog over deterministic graphs."""

from __future__ import annotations

import pytest

from repro.graph.generators import grid_road_network
from repro.service import GraphCatalog


@pytest.fixture(scope="module")
def grid():
    return grid_road_network(12, 12, seed=3)


@pytest.fixture
def catalog(grid):
    cat = GraphCatalog()
    cat.register("grid", grid)
    return cat
