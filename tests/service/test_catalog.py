"""Unit tests for the graph catalog."""

import pytest

from repro.graph.generators import path_graph
from repro.graph.io import write_dimacs
from repro.service import GraphCatalog, default_catalog


class TestRegistration:
    def test_graph_object(self):
        cat = GraphCatalog()
        cat.register("p", path_graph(5))
        assert cat.get("p").num_nodes == 5
        assert "p" in cat and len(cat) == 1

    def test_factory_is_lazy_and_memoised(self):
        calls = []

        def factory():
            calls.append(1)
            return path_graph(4)

        cat = GraphCatalog()
        cat.register("lazy", factory)
        assert calls == []  # nothing loaded yet
        a = cat.get("lazy")
        b = cat.get("lazy")
        assert a is b and calls == [1]

    def test_file_source(self, tmp_path):
        path = tmp_path / "g.gr"
        write_dimacs(path_graph(6), path)
        cat = GraphCatalog()
        cat.register_file("file", path)
        assert cat.get("file").num_nodes == 6

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            GraphCatalog().register_file("x", tmp_path / "absent.gr")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            GraphCatalog().register("", path_graph(3))

    def test_bad_factory_return_rejected(self):
        cat = GraphCatalog()
        cat.register("bad", lambda: 42)
        with pytest.raises(TypeError, match="expected CSRGraph"):
            cat.get("bad")

    def test_unknown_id_names_available(self):
        cat = GraphCatalog()
        cat.register("a", path_graph(3))
        with pytest.raises(KeyError, match="unknown graph 'z'"):
            cat.get("z")

    def test_reregister_replaces_and_invalidates(self):
        cat = GraphCatalog()
        cat.register("g", path_graph(3))
        first = cat.fingerprint("g")
        cat.register("g", path_graph(7))
        assert cat.get("g").num_nodes == 7
        assert cat.fingerprint("g") != first


class TestIntrospection:
    def test_describe_rows(self):
        cat = GraphCatalog()
        cat.register("p", path_graph(5))
        (row,) = cat.describe()
        assert row["id"] == "p"
        assert row["nodes"] == 5
        assert row["fingerprint"] == cat.fingerprint("p")

    def test_load_all(self):
        cat = GraphCatalog()
        cat.register("a", path_graph(3))
        cat.register("b", path_graph(4))
        graphs = cat.load_all()
        assert sorted(graphs) == ["a", "b"]


class TestDefaultCatalog:
    def test_has_paper_standins(self):
        cat = default_catalog(0.002)
        assert cat.names() == ["cal", "wiki"]
        assert cat.get("cal").num_nodes > 0

    def test_scale_changes_fingerprint(self):
        a = default_catalog(0.002).fingerprint("cal")
        b = default_catalog(0.003).fingerprint("cal")
        assert a != b
