"""Integration tests for the query engine: cache, dedup, obs, errors."""

import numpy as np
import pytest

from repro import obs
from repro.service import GraphCatalog, QueryEngine, SSSPQuery
from repro.sssp.dijkstra import dijkstra


class TestBasicQueries:
    def test_all_algorithms_answer(self, catalog):
        with QueryEngine(catalog) as engine:
            for algorithm, params in [
                ("dijkstra", {}),
                ("bellman-ford", {}),
                ("delta-stepping", {"delta": 2.0}),
                ("nearfar", {}),
                ("adaptive", {"setpoint": 100.0}),
                ("kla", {"k": 2}),
            ]:
                response = engine.run(
                    SSSPQuery("grid", 0, algorithm, params)
                )
                assert response.ok, response.error
                assert response.reached > 1

    def test_summary_matches_direct_run(self, catalog, grid):
        direct = dijkstra(grid, 3)
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("grid", 3, "dijkstra"))
        assert response.reached == direct.num_reached
        assert response.relaxations == direct.relaxations
        finite = direct.finite_distances()
        assert response.max_dist == pytest.approx(float(finite.max()))
        assert response.fingerprint == grid.fingerprint()

    def test_process_mode(self, catalog, grid):
        with QueryEngine(catalog, mode="process", max_workers=2) as engine:
            response = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert response.ok
        assert response.reached == dijkstra(grid, 0).num_reached


class TestCaching:
    def test_repeat_is_a_hit(self, catalog):
        with QueryEngine(catalog) as engine:
            first = engine.run(SSSPQuery("grid", 0, "dijkstra"))
            second = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert first.cache == "miss"
        assert second.cache == "hit"
        assert second.reached == first.reached

    def test_different_params_miss(self, catalog):
        with QueryEngine(catalog) as engine:
            a = engine.run(SSSPQuery("grid", 0, "nearfar", {"delta": 1.0}))
            b = engine.run(SSSPQuery("grid", 0, "nearfar", {"delta": 2.0}))
        assert a.cache == "miss" and b.cache == "miss"

    def test_changed_weights_never_hit(self, grid):
        """The satellite guarantee: new weights => new fingerprint => miss."""
        catalog = GraphCatalog()
        catalog.register("g", grid)
        with QueryEngine(catalog) as engine:
            first = engine.run(SSSPQuery("g", 0, "dijkstra"))
            assert first.cache == "miss"

        doubled = grid.with_weights(grid.weights * 2.0)
        catalog2 = GraphCatalog()
        catalog2.register("g", doubled)
        with QueryEngine(catalog2, cache_size=128) as engine2:
            # splice the old engine's cache in, simulating a long-lived
            # service whose graph data was re-registered
            engine2.cache = engine.cache
            response = engine2.run(SSSPQuery("g", 0, "dijkstra"))
        assert response.cache == "miss"
        assert response.fingerprint != first.fingerprint
        assert response.max_dist == pytest.approx(2.0 * first.max_dist)

    def test_cache_disabled(self, catalog):
        with QueryEngine(catalog, cache_size=0) as engine:
            engine.run(SSSPQuery("grid", 0, "dijkstra"))
            again = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert again.cache == "miss"

    def test_eviction_under_pressure(self, catalog):
        with QueryEngine(catalog, cache_size=2) as engine:
            for source in (0, 1, 2, 3):
                engine.run(SSSPQuery("grid", source, "dijkstra"))
            stats = engine.cache.stats()
        assert stats["evictions"] == 2
        assert stats["size"] == 2


class TestDedup:
    def test_identical_in_flight_coalesce(self, catalog):
        queries = [
            SSSPQuery("grid", 5, "dijkstra"),
            SSSPQuery("grid", 5, "dijkstra"),
            SSSPQuery("grid", 5, "dijkstra"),
            SSSPQuery("grid", 6, "dijkstra"),
        ]
        with QueryEngine(catalog, max_workers=2) as engine:
            responses = engine.run_many(queries)
        assert [r.cache for r in responses] == [
            "miss",
            "coalesced",
            "coalesced",
            "miss",
        ]
        assert responses[0].reached == responses[1].reached
        # the duplicate never executed: one cache insert per distinct key
        assert engine.cache.stats()["misses"] == 4  # one probe per query

    def test_responses_in_request_order(self, catalog):
        queries = [SSSPQuery("grid", s, "dijkstra") for s in (9, 1, 5)]
        with QueryEngine(catalog, max_workers=3) as engine:
            responses = engine.run_many(queries)
        assert [r.query.source for r in responses] == [9, 1, 5]


class TestErrors:
    def test_unknown_graph(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("nope", 0))
        assert not response.ok
        assert "unknown graph" in response.error

    def test_unknown_algorithm(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("grid", 0, "a-star"))
        assert not response.ok
        assert "unknown algorithm" in response.error

    def test_bad_params(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("grid", 0, "dijkstra", {"delta": 1}))
        assert not response.ok
        assert "does not accept" in response.error

    def test_source_out_of_range(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("grid", 10**6))
        assert not response.ok
        assert "out of range" in response.error

    def test_errors_do_not_poison_cache(self, catalog):
        with QueryEngine(catalog) as engine:
            engine.run(SSSPQuery("nope", 0))
            ok = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert ok.ok and ok.cache == "miss"


class TestObservability:
    def test_counters_and_events_under_use(self, catalog):
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=registry, events=sink):
            engine = QueryEngine(catalog)
            with engine:
                engine.run(SSSPQuery("grid", 0, "dijkstra"))
                engine.run(SSSPQuery("grid", 0, "dijkstra"))  # hit
                engine.run(SSSPQuery("nope", 0))  # error

        assert registry.counter("service.queries").value == 3
        assert registry.counter("service.errors").value == 1
        assert registry.counter("service.cache.hits").value == 1
        assert registry.counter("service.cache.misses").value == 1
        assert registry.timer("service.query_seconds").count == 2

        starts = sink.of_type("query_start")
        ends = sink.of_type("query_end")
        assert len(starts) == len(ends) == 3
        assert [e["cache"] for e in ends] == ["miss", "hit", None]
        assert [e["ok"] for e in ends] == [True, True, False]
        qids = [e["qid"] for e in starts]
        assert qids == sorted(qids)

    def test_stats_shape(self, catalog):
        with QueryEngine(catalog, max_workers=2) as engine:
            engine.run(SSSPQuery("grid", 0, "dijkstra"))
            stats = engine.stats()
        assert stats["graphs"] == ["grid"]
        assert stats["queries"] == 1
        assert stats["pool"]["max_workers"] == 2
        assert stats["cache"]["misses"] == 1


class TestResponseWireFormat:
    def test_ok_dict(self, catalog):
        with QueryEngine(catalog) as engine:
            d = engine.run(
                SSSPQuery("grid", 0, "dijkstra", request_id="abc")
            ).as_dict()
        assert d["ok"] is True
        assert d["id"] == "abc"
        assert set(d) >= {
            "graph",
            "source",
            "algorithm",
            "fingerprint",
            "cache",
            "reached",
            "iterations",
            "relaxations",
            "max_dist",
            "mean_dist",
            "wall_seconds",
        }

    def test_error_dict_is_minimal(self, catalog):
        with QueryEngine(catalog) as engine:
            d = engine.run(SSSPQuery("nope", 0)).as_dict()
        assert d["ok"] is False
        assert "error" in d and "fingerprint" not in d
