"""Integration tests for the query engine: cache, dedup, obs, errors."""

import numpy as np
import pytest

from repro import obs
from repro.resilience import BreakerConfig, FaultPlan, RetryPolicy
from repro.service import GraphCatalog, QueryEngine, SSSPQuery
from repro.sssp.dijkstra import dijkstra


def _plan_with_pattern(kinds, pattern, rate=0.5):
    """The first seed whose fault/clean schedule matches ``pattern``."""
    for seed in range(10_000):
        plan = FaultPlan(rate=rate, seed=seed, kinds=kinds)
        if [plan.decide(i) is not None for i in range(len(pattern))] == pattern:
            return plan
    raise AssertionError(f"no seed matches pattern {pattern}")


class TestBasicQueries:
    def test_all_algorithms_answer(self, catalog):
        with QueryEngine(catalog) as engine:
            for algorithm, params in [
                ("dijkstra", {}),
                ("bellman-ford", {}),
                ("delta-stepping", {"delta": 2.0}),
                ("nearfar", {}),
                ("adaptive", {"setpoint": 100.0}),
                ("kla", {"k": 2}),
            ]:
                response = engine.run(
                    SSSPQuery("grid", 0, algorithm, params)
                )
                assert response.ok, response.error
                assert response.reached > 1

    def test_summary_matches_direct_run(self, catalog, grid):
        direct = dijkstra(grid, 3)
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("grid", 3, "dijkstra"))
        assert response.reached == direct.num_reached
        assert response.relaxations == direct.relaxations
        finite = direct.finite_distances()
        assert response.max_dist == pytest.approx(float(finite.max()))
        assert response.fingerprint == grid.fingerprint()

    def test_process_mode(self, catalog, grid):
        with QueryEngine(catalog, mode="process", max_workers=2) as engine:
            response = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert response.ok
        assert response.reached == dijkstra(grid, 0).num_reached


class TestCaching:
    def test_repeat_is_a_hit(self, catalog):
        with QueryEngine(catalog) as engine:
            first = engine.run(SSSPQuery("grid", 0, "dijkstra"))
            second = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert first.cache == "miss"
        assert second.cache == "hit"
        assert second.reached == first.reached

    def test_different_params_miss(self, catalog):
        with QueryEngine(catalog) as engine:
            a = engine.run(SSSPQuery("grid", 0, "nearfar", {"delta": 1.0}))
            b = engine.run(SSSPQuery("grid", 0, "nearfar", {"delta": 2.0}))
        assert a.cache == "miss" and b.cache == "miss"

    def test_changed_weights_never_hit(self, grid):
        """The satellite guarantee: new weights => new fingerprint => miss."""
        catalog = GraphCatalog()
        catalog.register("g", grid)
        with QueryEngine(catalog) as engine:
            first = engine.run(SSSPQuery("g", 0, "dijkstra"))
            assert first.cache == "miss"

        doubled = grid.with_weights(grid.weights * 2.0)
        catalog2 = GraphCatalog()
        catalog2.register("g", doubled)
        with QueryEngine(catalog2, cache_size=128) as engine2:
            # splice the old engine's cache in, simulating a long-lived
            # service whose graph data was re-registered
            engine2.cache = engine.cache
            response = engine2.run(SSSPQuery("g", 0, "dijkstra"))
        assert response.cache == "miss"
        assert response.fingerprint != first.fingerprint
        assert response.max_dist == pytest.approx(2.0 * first.max_dist)

    def test_cache_disabled(self, catalog):
        with QueryEngine(catalog, cache_size=0) as engine:
            engine.run(SSSPQuery("grid", 0, "dijkstra"))
            again = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert again.cache == "miss"

    def test_eviction_under_pressure(self, catalog):
        with QueryEngine(catalog, cache_size=2) as engine:
            for source in (0, 1, 2, 3):
                engine.run(SSSPQuery("grid", source, "dijkstra"))
            stats = engine.cache.stats()
        assert stats["evictions"] == 2
        assert stats["size"] == 2


class TestDedup:
    def test_identical_in_flight_coalesce(self, catalog):
        queries = [
            SSSPQuery("grid", 5, "dijkstra"),
            SSSPQuery("grid", 5, "dijkstra"),
            SSSPQuery("grid", 5, "dijkstra"),
            SSSPQuery("grid", 6, "dijkstra"),
        ]
        with QueryEngine(catalog, max_workers=2) as engine:
            responses = engine.run_many(queries)
        assert [r.cache for r in responses] == [
            "miss",
            "coalesced",
            "coalesced",
            "miss",
        ]
        assert responses[0].reached == responses[1].reached
        # the duplicate never executed: one cache insert per distinct key
        assert engine.cache.stats()["misses"] == 4  # one probe per query

    def test_responses_in_request_order(self, catalog):
        queries = [SSSPQuery("grid", s, "dijkstra") for s in (9, 1, 5)]
        with QueryEngine(catalog, max_workers=3) as engine:
            responses = engine.run_many(queries)
        assert [r.query.source for r in responses] == [9, 1, 5]


class TestErrors:
    def test_unknown_graph(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("nope", 0))
        assert not response.ok
        assert "unknown graph" in response.error

    def test_unknown_algorithm(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("grid", 0, "a-star"))
        assert not response.ok
        assert "unknown algorithm" in response.error

    def test_bad_params(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("grid", 0, "dijkstra", {"delta": 1}))
        assert not response.ok
        assert "does not accept" in response.error

    def test_source_out_of_range(self, catalog):
        with QueryEngine(catalog) as engine:
            response = engine.run(SSSPQuery("grid", 10**6))
        assert not response.ok
        assert "out of range" in response.error

    def test_errors_do_not_poison_cache(self, catalog):
        with QueryEngine(catalog) as engine:
            engine.run(SSSPQuery("nope", 0))
            ok = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert ok.ok and ok.cache == "miss"


class TestObservability:
    def test_counters_and_events_under_use(self, catalog):
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=registry, events=sink):
            engine = QueryEngine(catalog)
            with engine:
                engine.run(SSSPQuery("grid", 0, "dijkstra"))
                engine.run(SSSPQuery("grid", 0, "dijkstra"))  # hit
                engine.run(SSSPQuery("nope", 0))  # error

        assert registry.counter("service.queries").value == 3
        assert registry.counter("service.errors").value == 1
        assert registry.counter("service.cache.hits").value == 1
        assert registry.counter("service.cache.misses").value == 1
        assert registry.timer("service.query_seconds").count == 2

        starts = sink.of_type("query_start")
        ends = sink.of_type("query_end")
        assert len(starts) == len(ends) == 3
        assert [e["cache"] for e in ends] == ["miss", "hit", None]
        assert [e["ok"] for e in ends] == [True, True, False]
        qids = [e["qid"] for e in starts]
        assert qids == sorted(qids)

    def test_stats_shape(self, catalog):
        with QueryEngine(catalog, max_workers=2) as engine:
            engine.run(SSSPQuery("grid", 0, "dijkstra"))
            stats = engine.stats()
        assert stats["graphs"] == ["grid"]
        assert stats["queries"] == 1
        assert stats["pool"]["max_workers"] == 2
        assert stats["cache"]["misses"] == 1


class TestResilience:
    def test_transient_fault_is_retried_then_cached(self, catalog, grid):
        # attempt 0 faulted, attempt 1 clean
        plan = _plan_with_pattern(("transient",), [True, False])
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=registry, events=sink):
            with QueryEngine(
                catalog,
                fault_plan=plan,
                retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            ) as engine:
                response = engine.run(SSSPQuery("grid", 0, "dijkstra"))

        assert response.ok, response.error
        assert response.attempts == 2
        assert response.reached == dijkstra(grid, 0).num_reached
        # the failed attempt was never cached; the good one was
        assert engine.cache.stats()["size"] == 1
        assert registry.counter("service.retries").value == 1
        retries = sink.of_type("query_retry")
        assert len(retries) == 1
        assert retries[0]["attempt"] == 1
        assert "transient" in retries[0]["error"]

    def test_exhausted_retries_fail_without_caching(self, catalog):
        plan = FaultPlan(rate=1.0, kinds=("crash",))
        with QueryEngine(
            catalog,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        ) as engine:
            response = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert not response.ok
        assert response.attempts == 2
        assert len(engine.cache) == 0
        assert engine.retry_exhausted == 1

    def test_breaker_opens_and_rejects_fast(self, catalog):
        plan = FaultPlan(rate=1.0, kinds=("crash",))
        with QueryEngine(
            catalog,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=2, reset_seconds=60.0),
        ) as engine:
            first = engine.run(SSSPQuery("grid", 0, "dijkstra"))
            second = engine.run(SSSPQuery("grid", 1, "dijkstra"))
            third = engine.run(SSSPQuery("grid", 2, "dijkstra"))
            health = engine.health()

        assert not first.ok and "circuit breaker" not in first.error
        assert not second.ok
        assert not third.ok and "circuit breaker" in third.error
        assert health["breakers_open"] == 1
        # the rejected query never reached the pool
        assert health["pool"]["pending"] == 0

    def test_submission_recovers_from_async_pool_break(self, catalog, monkeypatch):
        """A worker can die while *other* work is being submitted,
        breaking the executor before this query's submit ran — the
        engine must recover and submit again, not fail the query."""
        from concurrent.futures import BrokenExecutor

        with QueryEngine(catalog) as engine:
            real_submit = engine.pool.submit
            calls = {"n": 0}

            def breaking_submit(*args, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise BrokenExecutor("pool broke under our feet")
                return real_submit(*args, **kwargs)

            monkeypatch.setattr(engine.pool, "submit", breaking_submit)
            response = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert response.ok, response.error
        assert engine.pool.rebuilds == 1

    def test_attempts_in_wire_dict_only_when_retried(self, catalog):
        plan = _plan_with_pattern(("transient",), [True, False])
        with QueryEngine(
            catalog,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        ) as engine:
            retried = engine.run(SSSPQuery("grid", 0, "dijkstra")).as_dict()
            clean = engine.run(SSSPQuery("grid", 1, "dijkstra")).as_dict()
        assert retried["attempts"] == 2
        assert "attempts" not in clean

    def test_health_shape(self, catalog):
        with QueryEngine(catalog, max_workers=2) as engine:
            engine.run(SSSPQuery("grid", 0, "dijkstra"))
            health = engine.health()
        assert health["pool"]["alive"] is True
        assert health["pool"]["max_workers"] == 2
        assert health["pool"]["lost_workers"] == 0
        (corridor,) = health["breakers"]
        assert (corridor["graph"], corridor["algorithm"]) == ("grid", "dijkstra")
        assert corridor["state"] == "closed"
        assert health["breakers_open"] == 0
        assert health["retries"]["attempts"] == 0
        assert health["retries"]["exhausted"] == 0


class TestResponseWireFormat:
    def test_ok_dict(self, catalog):
        with QueryEngine(catalog) as engine:
            d = engine.run(
                SSSPQuery("grid", 0, "dijkstra", request_id="abc")
            ).as_dict()
        assert d["ok"] is True
        assert d["id"] == "abc"
        assert set(d) >= {
            "graph",
            "source",
            "algorithm",
            "fingerprint",
            "cache",
            "reached",
            "iterations",
            "relaxations",
            "max_dist",
            "mean_dist",
            "wall_seconds",
        }

    def test_error_dict_is_minimal(self, catalog):
        with QueryEngine(catalog) as engine:
            d = engine.run(SSSPQuery("nope", 0)).as_dict()
        assert d["ok"] is False
        assert "error" in d and "fingerprint" not in d


class TestBatching:
    """Coalescing concurrent same-corridor queries into one kernel call."""

    def _queries(self, sources, algorithm="nearfar"):
        return [SSSPQuery("grid", s, algorithm) for s in sources]

    def test_batched_results_match_singles(self, catalog, grid):
        with QueryEngine(catalog, max_batch=8) as engine:
            batched = engine.run_many(self._queries([0, 5, 9, 20]))
        with QueryEngine(catalog, max_batch=1) as engine:
            singles = engine.run_many(self._queries([0, 5, 9, 20]))
        for b, s in zip(batched, singles):
            assert b.ok and s.ok
            assert b.reached == s.reached
            assert b.iterations == s.iterations
        oracle = dijkstra(grid, 0)
        assert batched[0].reached == oracle.num_reached

    def test_batch_dispatch_event_and_metrics(self, catalog):
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=registry, events=sink):
            with QueryEngine(catalog, max_batch=8) as engine:
                responses = engine.run_many(self._queries([0, 5, 9]))
        assert all(r.ok for r in responses)
        [dispatch] = sink.of_type("batch_dispatch")
        assert dispatch["graph"] == "grid"
        assert dispatch["algorithm"] == "nearfar"
        assert dispatch["batch_size"] == 3
        assert dispatch["sources"] == [0, 5, 9]
        # every member still gets its own lifecycle events
        assert len(sink.of_type("query_start")) == 3
        assert len(sink.of_type("query_end")) == 3
        hist = registry.histogram("service.batch.size")
        assert hist.count == 1 and hist.total == 3.0
        # 3 queries answered by 1 kernel call: 2 pool tasks saved
        assert registry.counter("service.batch.coalesced").value == 2

    def test_duplicate_sources_coalesce_not_batch(self, catalog):
        sink = obs.ListSink()
        with obs.use(events=sink):
            with QueryEngine(catalog, max_batch=8) as engine:
                responses = engine.run_many(self._queries([0, 5, 0]))
        assert all(r.ok for r in responses)
        assert responses[2].cache == "coalesced"
        [dispatch] = sink.of_type("batch_dispatch")
        assert dispatch["batch_size"] == 2  # the duplicate rode along

    def test_each_member_cached_individually(self, catalog):
        with QueryEngine(catalog, max_batch=8) as engine:
            engine.run_many(self._queries([0, 5, 9]))
            assert engine.cache.stats()["size"] == 3
            again = engine.run(SSSPQuery("grid", 5, "nearfar"))
        assert again.cache == "hit"

    def test_max_batch_one_disables(self, catalog):
        sink = obs.ListSink()
        with obs.use(events=sink):
            with QueryEngine(catalog, max_batch=1) as engine:
                responses = engine.run_many(self._queries([0, 5]))
        assert all(r.ok for r in responses)
        assert sink.of_type("batch_dispatch") == []

    def test_unbatchable_algorithm_not_batched(self, catalog):
        sink = obs.ListSink()
        with obs.use(events=sink):
            with QueryEngine(catalog, max_batch=8) as engine:
                responses = engine.run_many(self._queries([0, 5], "dijkstra"))
        assert all(r.ok for r in responses)
        assert sink.of_type("batch_dispatch") == []

    def test_mixed_corridors_split(self, catalog):
        """Different params -> different corridors -> separate dispatches."""
        sink = obs.ListSink()
        queries = [
            SSSPQuery("grid", 0, "nearfar"),
            SSSPQuery("grid", 5, "nearfar", params={"delta": 4.0}),
            SSSPQuery("grid", 9, "nearfar"),
        ]
        with obs.use(events=sink):
            with QueryEngine(catalog, max_batch=8) as engine:
                responses = engine.run_many(queries)
        assert all(r.ok for r in responses)
        [dispatch] = sink.of_type("batch_dispatch")
        assert dispatch["sources"] == [0, 9]  # the delta=4 query went solo

    def test_chunking_respects_max_batch(self, catalog):
        sink = obs.ListSink()
        with obs.use(events=sink):
            with QueryEngine(catalog, max_batch=2) as engine:
                responses = engine.run_many(self._queries([0, 5, 9, 20]))
        assert all(r.ok for r in responses)
        sizes = [e["batch_size"] for e in sink.of_type("batch_dispatch")]
        assert sizes == [2, 2]

    def test_whole_batch_retried_on_transient(self, catalog, grid):
        # task 0 (the batch) faulted, task 1 (the resubmission) clean
        plan = _plan_with_pattern(("transient",), [True, False])
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=registry, events=sink):
            with QueryEngine(
                catalog,
                max_batch=8,
                fault_plan=plan,
                retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            ) as engine:
                responses = engine.run_many(self._queries([0, 5]))
        assert all(r.ok for r in responses), [r.error for r in responses]
        assert all(r.attempts == 2 for r in responses)
        assert responses[0].reached == dijkstra(grid, 0).num_reached
        # one resubmission, but every member reports its retry
        assert registry.counter("service.retries").value == 1
        assert len(sink.of_type("query_retry")) == 2

    def test_batch_failure_fails_all_members(self, catalog):
        plan = FaultPlan(rate=1.0, kinds=("crash",))
        with QueryEngine(
            catalog,
            max_batch=8,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        ) as engine:
            responses = engine.run_many(self._queries([0, 5]))
        assert all(not r.ok for r in responses)
        assert len(engine.cache) == 0
        assert engine.retry_exhausted == 2

    def test_stats_reports_max_batch(self, catalog):
        with QueryEngine(catalog, max_batch=4) as engine:
            assert engine.stats()["max_batch"] == 4

    def test_invalid_max_batch_rejected(self, catalog):
        with pytest.raises(ValueError, match="max_batch"):
            QueryEngine(catalog, max_batch=0)
