"""End-to-end trace propagation through the query engine and pool.

The tentpole acceptance story: one traced query produces spans that
cover engine -> pool -> worker -> kernel (worker-side spans shipped
back in the task payload and re-rooted under ``worker/``), and the
serving registry's labelled ``service.query.*`` histograms fill with
real latencies — in thread AND process pool mode.
"""

import pytest

from repro import obs
from repro.obs.telemetry import TraceContext
from repro.service import QueryEngine, SSSPQuery


def _telemetry_ctx():
    return obs.use(
        registry=obs.MetricsRegistry(),
        events=obs.ListSink(),
        spans=obs.SpanRecorder(),
    )


class TestTelemetryOff:
    def test_engine_stays_bare_under_null_context(self, catalog):
        with obs.use():
            with QueryEngine(catalog) as engine:
                assert engine.telemetry is False
                response = engine.run(SSSPQuery("grid", 0, "nearfar"))
        assert response.ok
        assert response.trace_id is None
        assert "trace" not in response.as_dict()

    def test_metrics_snapshot_empty_without_registry(self, catalog):
        with obs.use():
            with QueryEngine(catalog) as engine:
                engine.run(SSSPQuery("grid", 0, "nearfar"))
                assert engine.metrics_snapshot() == {}


class TestThreadModeTraces:
    def test_spans_cover_engine_pool_worker_kernel(self, catalog):
        root = TraceContext.mint()
        spans = obs.SpanRecorder()
        sink = obs.ListSink()
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry, events=sink, spans=spans):
            with QueryEngine(catalog) as engine:
                response = engine.run(
                    SSSPQuery("grid", 0, "nearfar", trace=root)
                )
        assert response.ok
        assert response.trace_id == root.trace_id
        assert response.as_dict()["trace"] == root.trace_id
        paths = [s.path for s in spans.profile()]
        assert "worker/task" in paths
        assert "worker/task/kernel" in paths
        span_events = sink.of_type("span")
        names = {e["name"] for e in span_events}
        assert {"engine/query", "worker/task", "worker/task/kernel"} <= names
        assert all(e["trace"] == root.trace_id for e in span_events)

    def test_latency_histograms_fill_per_graph_algorithm(self, catalog):
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry):
            with QueryEngine(catalog, cache_size=0, max_batch=1) as engine:
                responses = engine.run_many(
                    [SSSPQuery("grid", s, "nearfar") for s in range(4)]
                )
        assert all(r.ok for r in responses)
        labels = {"graph": "grid", "algorithm": "nearfar"}
        latency = registry.histogram("service.query.latency", labels=labels)
        assert latency.count == 4
        pct = latency.percentiles()
        assert 0 < pct["p50"] <= pct["p95"] <= pct["p99"]
        compute = registry.histogram("service.query.compute", labels=labels)
        wait = registry.histogram("service.query.queue_wait", labels=labels)
        assert compute.count == 4 and compute.total > 0
        assert wait.count == 4 and wait.total >= 0

    def test_engine_mints_root_when_query_has_none(self, catalog):
        with _telemetry_ctx():
            with QueryEngine(catalog) as engine:
                response = engine.run(SSSPQuery("grid", 0, "nearfar"))
        assert response.ok
        assert response.trace_id  # direct engine users still get traced

    def test_cache_hit_reuses_trace_and_records_latency(self, catalog):
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry):
            with QueryEngine(catalog) as engine:
                miss = engine.run(SSSPQuery("grid", 0, "nearfar"))
                hit = engine.run(SSSPQuery("grid", 0, "nearfar"))
        assert miss.cache == "miss" and hit.cache == "hit"
        assert hit.trace_id and hit.trace_id != miss.trace_id
        labels = {"graph": "grid", "algorithm": "nearfar"}
        assert registry.histogram("service.query.latency", labels=labels).count == 2
        # only the miss computed anything
        assert registry.histogram("service.query.compute", labels=labels).count == 1

    def test_unsampled_trace_merges_metrics_without_span_events(self, catalog):
        root = TraceContext.mint(sampled=False)
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=registry, events=sink):
            with QueryEngine(catalog) as engine:
                response = engine.run(
                    SSSPQuery("grid", 0, "nearfar", trace=root)
                )
        assert response.ok and response.trace_id == root.trace_id
        assert sink.of_type("span") == []
        # worker kernel metrics still merged into the serving registry
        assert registry.counter("sssp.relaxations").value > 0

    def test_batched_members_share_worker_payload(self, catalog):
        root = TraceContext.mint()
        spans = obs.SpanRecorder()
        with obs.use(registry=obs.MetricsRegistry(), spans=spans):
            with QueryEngine(catalog, max_batch=8) as engine:
                responses = engine.run_many(
                    [
                        SSSPQuery("grid", s, "nearfar", trace=root.child())
                        for s in (0, 5, 9)
                    ]
                )
        assert all(r.ok for r in responses)
        assert all(r.trace_id == root.trace_id for r in responses)
        # one coalesced kernel call -> exactly one worker task span
        assert spans.count("worker/task") == 1

    def test_stats_reports_telemetry_flag(self, catalog):
        with _telemetry_ctx():
            with QueryEngine(catalog) as engine:
                assert engine.stats()["telemetry"] is True
        with obs.use():
            with QueryEngine(catalog) as engine:
                assert engine.stats()["telemetry"] is False


class TestProcessModeTraces:
    def test_worker_spans_cross_the_process_boundary(self, catalog):
        root = TraceContext.mint()
        spans = obs.SpanRecorder()
        sink = obs.ListSink()
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry, events=sink, spans=spans):
            with QueryEngine(catalog, mode="process", max_workers=2) as engine:
                response = engine.run(
                    SSSPQuery("grid", 0, "nearfar", trace=root)
                )
        assert response.ok
        assert response.trace_id == root.trace_id
        paths = [s.path for s in spans.profile()]
        assert "worker/task" in paths
        assert "worker/task/kernel" in paths
        # kernel metrics computed in the child process reached us
        assert registry.counter("sssp.relaxations").value > 0
        labels = {"graph": "grid", "algorithm": "nearfar"}
        assert (
            registry.histogram("service.query.latency", labels=labels).count
            == 1
        )
        names = {e["name"] for e in sink.of_type("span")}
        assert "worker/task/kernel" in names
