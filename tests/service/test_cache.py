"""Unit tests for the LRU result cache (including obs counter wiring)."""

import pytest

from repro import obs
from repro.service.cache import LRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_none_values_rejected(self):
        with pytest.raises(ValueError, match="None"):
            LRUCache(4).put("a", None)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert "a" not in cache


class TestEviction:
    def test_lru_entry_evicted_first(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_refresh_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_eviction_count_grows(self):
        cache = LRUCache(1)
        for i in range(5):
            cache.put(i, i)
        assert cache.evictions == 4
        assert len(cache) == 1


class TestObsCounters:
    def test_counters_published_under_use(self):
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry):
            cache = LRUCache(2)
        cache.get("a")          # miss
        cache.put("a", 1)
        cache.get("a")          # hit
        cache.put("b", 2)
        cache.put("c", 3)       # evicts "a"
        assert registry.counter("service.cache.hits").value == 1
        assert registry.counter("service.cache.misses").value == 1
        assert registry.counter("service.cache.evictions").value == 1
        assert registry.gauge("service.cache.size").value == 2

    def test_null_context_counts_locally(self):
        cache = LRUCache(2)  # no registry active: null handles
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        assert cache.stats() == {
            "capacity": 2,
            "size": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }
