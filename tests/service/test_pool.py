"""Unit tests for the executor pool."""

import time

import pytest

from repro import obs
from repro.graph.generators import grid_road_network, path_graph
from repro.resilience import FaultPlan, InjectedTransientError
from repro.service.pool import ExecutorPool, PoolTimeoutError
from repro.sssp.dijkstra import dijkstra


def _reached(graph, source):
    """Module-level so the process pool can pickle it."""
    return dijkstra(graph, source).num_reached


def _sleep_then(graph, source, seconds):
    time.sleep(seconds)
    return source


def plan_with_pattern(kinds, pattern, rate=0.5):
    """The first seed whose fault schedule matches ``pattern`` exactly.

    Deterministic (FaultPlan.decide is a pure function of seed and
    index), so tests get e.g. "task 0 faulted, task 1 clean" without
    hard-coding magic seeds that silently rot.
    """
    for seed in range(10_000):
        plan = FaultPlan(rate=rate, seed=seed, kinds=kinds)
        if [plan.decide(i) is not None for i in range(len(pattern))] == pattern:
            return plan
    raise AssertionError(f"no seed matches pattern {pattern}")


class TestConstruction:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ExecutorPool({}, mode="coroutine")

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ExecutorPool({}, max_workers=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            ExecutorPool({}, timeout=0)

    def test_graph_ids_sorted(self):
        pool = ExecutorPool({"b": path_graph(3), "a": path_graph(4)})
        assert pool.graph_ids == ["a", "b"]


class TestThreadMode:
    @pytest.fixture
    def pool(self):
        with ExecutorPool(
            {"grid": grid_road_network(8, 8, seed=1)}, max_workers=3
        ) as p:
            yield p

    def test_run_executes_on_named_graph(self, pool):
        n = pool.graph("grid").num_nodes
        assert pool.run("grid", _reached, 0) <= n

    def test_closures_allowed(self, pool):
        seen = []
        pool.run("grid", lambda g, s: seen.append((g.num_nodes, s)), 7)
        assert seen == [(pool.graph("grid").num_nodes, 7)]

    def test_unknown_graph_rejected(self, pool):
        with pytest.raises(KeyError, match="unknown graph"):
            pool.submit("nope", _reached, 0)

    def test_map_ordered_preserves_input_order(self, pool):
        # delays are inversely ordered: later tasks finish first
        args = [(i, 0.03 - 0.01 * i) for i in range(3)]
        assert pool.map_ordered("grid", _sleep_then, args) == [0, 1, 2]

    def test_timeout_raises(self):
        with ExecutorPool(
            {"p": path_graph(3)}, max_workers=1, timeout=0.05
        ) as pool:
            with pytest.raises(PoolTimeoutError, match="exceeded"):
                pool.run("p", _sleep_then, 0, 0.5)

    def test_closed_pool_rejects_submission(self):
        pool = ExecutorPool({"p": path_graph(3)})
        pool.run("p", _reached, 0)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit("p", _reached, 0)

    def test_pending_drains_to_zero(self, pool):
        pool.map_ordered("grid", _reached, [(0,), (1,), (2,)])
        assert pool.pending == 0


class TestProcessMode:
    def test_graph_shared_via_initializer(self):
        graph = grid_road_network(8, 8, seed=1)
        with ExecutorPool({"grid": graph}, mode="process", max_workers=2) as pool:
            results = pool.map_ordered("grid", _reached, [(0,), (5,), (9,)])
        expected = [dijkstra(graph, s).num_reached for s in (0, 5, 9)]
        assert results == expected


class TestAbandonAndLostWorkers:
    def test_timeout_accounts_the_lost_thread_slot(self):
        """The satellite fix: a timed-out thread task cannot be killed,
        so its slot is counted lost until the straggler finishes."""
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry):
            pool = ExecutorPool({"p": path_graph(3)}, max_workers=1, timeout=0.05)
        with pool:
            with pytest.raises(PoolTimeoutError):
                pool.run("p", _sleep_then, 0, 0.4)
            assert pool.lost_workers == 1
            assert registry.gauge("service.pool.lost_workers").value == 1
            deadline = time.time() + 2.0
            while pool.lost_workers and time.time() < deadline:
                time.sleep(0.05)
            # the straggler returned on its own: slot reclaimed
            assert pool.lost_workers == 0
            assert registry.gauge("service.pool.lost_workers").value == 0

    def test_abandon_cancels_queued_work_without_accounting(self):
        with ExecutorPool({"p": path_graph(3)}, max_workers=1) as pool:
            blocker = pool.submit("p", _sleep_then, 0, 0.2)
            queued = pool.submit("p", _sleep_then, 1, 0.0)
            assert pool.abandon(queued) is True  # cancelled before starting
            assert pool.lost_workers == 0
            assert blocker.result() == 0


class TestFaultInjection:
    def test_planned_fault_raises_in_thread_mode(self):
        plan = FaultPlan(rate=1.0, kinds=("transient",))
        with ExecutorPool({"p": path_graph(3)}, fault_plan=plan) as pool:
            with pytest.raises(InjectedTransientError):
                pool.run("p", _reached, 0)

    def test_clean_indices_run_clean(self):
        plan = plan_with_pattern(("transient",), [False, True])
        with ExecutorPool({"p": path_graph(3)}, fault_plan=plan) as pool:
            assert pool.run("p", _reached, 0) == 3  # index 0 is clean
            with pytest.raises(InjectedTransientError):
                pool.run("p", _reached, 0)  # index 1 is not

    def test_broken_process_pool_recovers_transparently(self):
        # task 0 kills its worker (BrokenProcessPool); run() must
        # rebuild the executor and requeue, task 1 runs clean
        plan = plan_with_pattern(("poolbreak",), [True, False])
        graph = grid_road_network(8, 8, seed=1)
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry):
            pool = ExecutorPool(
                {"grid": graph}, mode="process", max_workers=1, fault_plan=plan
            )
        with pool:
            assert pool.run("grid", _reached, 0) == dijkstra(graph, 0).num_reached
            assert pool.rebuilds == 1
            assert registry.counter("service.pool.rebuilds").value == 1
            assert pool.alive


class TestMetrics:
    def test_task_counter_and_queue_gauge(self):
        registry = obs.MetricsRegistry()
        with obs.use(registry=registry):
            pool = ExecutorPool({"p": path_graph(5)}, max_workers=1)
        with pool:
            pool.map_ordered("p", _reached, [(0,), (1,)])
        assert registry.counter("service.pool.tasks").value == 2
        assert registry.gauge("service.pool.queue_depth").value == 0
