"""Tests for the JSONL serve protocol."""

import io
import json

import pytest

from repro.service import QueryEngine, handle_line, serve_stream
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolSession,
    parse_batch_query,
    parse_query,
)


class TestParseQuery:
    def test_minimal(self):
        q = parse_query({"graph": "g", "source": 3})
        assert q.graph_id == "g"
        assert q.source == 3
        assert q.algorithm == "adaptive"
        assert dict(q.params) == {}
        assert q.request_id is None

    def test_full(self):
        q = parse_query(
            {
                "graph": "g",
                "source": "4",
                "algorithm": "nearfar",
                "params": {"delta": 1.5},
                "id": 7,
            }
        )
        assert q.source == 4
        assert q.request_id == "7"
        assert dict(q.params) == {"delta": 1.5}

    @pytest.mark.parametrize(
        "request_,message",
        [
            ({"source": 0}, "missing 'graph'"),
            ({"graph": "g"}, "missing 'source'"),
            ({"graph": "g", "source": "abc"}, "integer"),
            ({"graph": "g", "source": 0, "params": [1]}, "object"),
        ],
    )
    def test_rejections(self, request_, message):
        with pytest.raises(ValueError, match=message):
            parse_query(request_)

    def test_oversized_params_rejected(self):
        params = {f"k{i}": i for i in range(17)}
        with pytest.raises(ValueError, match=r"17 keys \(max 16\)"):
            parse_query({"graph": "g", "source": 0, "params": params})

    def test_params_at_the_bound_accepted(self):
        params = {f"k{i}": i for i in range(16)}
        q = parse_query({"graph": "g", "source": 0, "params": params})
        assert len(dict(q.params)) == 16


class TestHandleLine:
    @pytest.fixture
    def engine(self, catalog):
        with QueryEngine(catalog) as e:
            yield e

    def test_blank_line_skipped(self, engine):
        assert handle_line(engine, "   \n") is None

    def test_bad_json(self, engine):
        response = handle_line(engine, "{nope")
        assert response["ok"] is False
        assert "invalid JSON" in response["error"]

    def test_non_object(self, engine):
        response = handle_line(engine, "[1, 2]")
        assert response["ok"] is False

    def test_query_default_op(self, engine):
        response = handle_line(engine, '{"graph": "grid", "source": 0}')
        assert response["ok"] is True
        assert response["cache"] == "miss"

    def test_query_echoes_id_on_parse_error(self, engine):
        response = handle_line(engine, '{"graph": "grid", "id": "x"}')
        assert response["ok"] is False
        assert response["id"] == "x"

    def test_stats_op(self, engine):
        handle_line(engine, '{"graph": "grid", "source": 0}')
        response = handle_line(engine, '{"op": "stats"}')
        assert response["ok"] is True
        assert response["queries"] == 1
        assert response["cache"]["misses"] == 1

    def test_graphs_op(self, engine):
        response = handle_line(engine, '{"op": "graphs"}')
        assert response["ok"] is True
        assert [g["id"] for g in response["graphs"]] == ["grid"]

    def test_health_op(self, engine):
        response = handle_line(engine, '{"op": "health"}')
        assert response["ok"] is True
        assert response["op"] == "health"
        assert response["v"] == PROTOCOL_VERSION
        assert response["pool"]["alive"] is True
        assert response["breakers"] == []
        assert response["breakers_open"] == 0
        assert response["retries"]["exhausted"] == 0

    def test_unknown_op(self, engine):
        response = handle_line(engine, '{"op": "shutdown"}')
        assert response["ok"] is False
        assert "unknown op" in response["error"]
        assert "health" in response["error"]


class TestServeStream:
    def test_one_response_per_request(self, catalog):
        lines = [
            '{"graph": "grid", "source": 0, "algorithm": "dijkstra", "id": "a"}',
            "",
            '{"graph": "grid", "source": 0, "algorithm": "dijkstra", "id": "b"}',
            "garbage",
            '{"op": "stats"}',
        ]
        out = io.StringIO()
        with QueryEngine(catalog) as engine:
            written = serve_stream(engine, lines, out)
        assert written == 4  # the blank line produces nothing
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        assert len(responses) == 4
        assert responses[0]["id"] == "a" and responses[0]["cache"] == "miss"
        assert responses[1]["id"] == "b" and responses[1]["cache"] == "hit"
        assert responses[2]["ok"] is False
        assert responses[3]["op"] == "stats"

    def test_stream_survives_engine_level_errors(self, catalog):
        lines = [
            '{"graph": "absent", "source": 0}',
            '{"graph": "grid", "source": 0}',
        ]
        out = io.StringIO()
        with QueryEngine(catalog) as engine:
            assert serve_stream(engine, lines, out) == 2
        first, second = (json.loads(l) for l in out.getvalue().splitlines())
        assert first["ok"] is False
        assert second["ok"] is True

    def test_stream_survives_an_engine_crash(self, catalog, monkeypatch):
        """The satellite guarantee: an unexpected exception while
        answering one line is answered in-band, not raised."""
        lines = [
            '{"graph": "grid", "source": 0}',
            '{"graph": "grid", "source": 1}',
        ]
        out = io.StringIO()
        with QueryEngine(catalog) as engine:
            real_run = engine.run
            calls = {"n": 0}

            def flaky_run(query):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("engine exploded")
                return real_run(query)

            monkeypatch.setattr(engine, "run", flaky_run)
            assert serve_stream(engine, lines, out) == 2
        first, second = (json.loads(l) for l in out.getvalue().splitlines())
        assert first["ok"] is False
        assert "internal error: RuntimeError: engine exploded" in first["error"]
        assert second["ok"] is True


class TestBatchQueries:
    """Protocol v3: the ``sources`` list form."""

    @pytest.fixture
    def engine(self, catalog):
        with QueryEngine(catalog, max_batch=8) as e:
            yield e

    def test_parse_batch(self):
        queries = parse_batch_query(
            {"graph": "g", "sources": [1, 2, 3], "algorithm": "nearfar"}
        )
        assert [q.source for q in queries] == [1, 2, 3]
        assert all(q.graph_id == "g" for q in queries)
        assert all(q.algorithm == "nearfar" for q in queries)

    @pytest.mark.parametrize(
        "request_, message",
        [
            ({"graph": "g", "sources": []}, "non-empty"),
            ({"graph": "g", "sources": 3}, "non-empty array"),
            ({"graph": "g", "sources": [1], "source": 1}, "not both"),
            ({"graph": "g", "sources": [1, "x"]}, "integer"),
            ({"graph": "g", "sources": [1, True]}, "integer"),
            ({"graph": "g", "sources": list(range(257))}, "max 256"),
        ],
    )
    def test_rejections(self, request_, message):
        with pytest.raises(ValueError, match=message):
            parse_batch_query(request_)

    def test_handle_line_sources(self, engine):
        response = handle_line(
            engine,
            '{"graph": "grid", "sources": [0, 5, 9], '
            '"algorithm": "nearfar", "id": "b1"}',
        )
        assert response["ok"] is True
        assert response["count"] == 3
        assert response["id"] == "b1"
        assert len(response["results"]) == 3
        for entry in response["results"]:
            assert entry["ok"] is True
            assert entry["reached"] > 1

    def test_handle_line_sources_partial_failure(self, engine):
        big = 10_000_000
        response = handle_line(
            engine,
            f'{{"graph": "grid", "sources": [0, {big}], "algorithm": "nearfar"}}',
        )
        assert response["ok"] is False  # all-ok conjunction
        assert response["count"] == 2
        assert response["results"][0]["ok"] is True
        assert response["results"][1]["ok"] is False

    def test_handle_line_sources_parse_error_echoes_id(self, engine):
        response = handle_line(
            engine, '{"graph": "grid", "sources": [], "id": "e"}'
        )
        assert response["ok"] is False
        assert response["id"] == "e"

    def test_duplicate_sources_one_line(self, engine):
        response = handle_line(
            engine,
            '{"graph": "grid", "sources": [0, 0, 5], "algorithm": "nearfar"}',
        )
        assert response["ok"] is True
        caches = [entry["cache"] for entry in response["results"]]
        assert caches.count("coalesced") == 1


class TestMetricsOpAndTraces:
    """Protocol v4: the metrics op, per-line trace minting, sampling."""

    def _telemetry(self):
        from repro import obs

        return obs.use(
            registry=obs.MetricsRegistry(),
            events=obs.ListSink(),
            spans=obs.SpanRecorder(),
        )

    def test_metrics_op_json_snapshot(self, catalog):
        with self._telemetry():
            with QueryEngine(catalog) as engine:
                handle_line(engine, '{"graph": "grid", "source": 0}')
                response = handle_line(engine, '{"op": "metrics"}')
        assert response["ok"] is True
        assert response["op"] == "metrics"
        assert response["v"] == PROTOCOL_VERSION
        latency_keys = [
            k for k in response["metrics"] if k.startswith("service.query.latency")
        ]
        assert len(latency_keys) == 1
        data = response["metrics"][latency_keys[0]]
        assert data["count"] == 1
        assert data["p50"] > 0 and data["p99"] > 0

    def test_metrics_op_prometheus_text(self, catalog):
        with self._telemetry():
            with QueryEngine(catalog) as engine:
                handle_line(engine, '{"graph": "grid", "source": 0}')
                response = handle_line(
                    engine, '{"op": "metrics", "format": "prometheus"}'
                )
        assert response["ok"] is True
        assert response["format"] == "prometheus"
        assert "repro_service_query_latency_bucket" in response["text"]
        assert 'graph="grid"' in response["text"]

    def test_metrics_op_empty_without_telemetry(self, catalog):
        from repro import obs

        with obs.use():
            with QueryEngine(catalog) as engine:
                response = handle_line(engine, '{"op": "metrics"}')
        assert response["ok"] is True
        assert response["metrics"] == {}

    def test_query_response_carries_trace_when_telemetry_on(self, catalog):
        with self._telemetry():
            with QueryEngine(catalog) as engine:
                single = handle_line(engine, '{"graph": "grid", "source": 0}')
                batch = handle_line(
                    engine, '{"graph": "grid", "sources": [1, 2]}'
                )
        assert single["ok"] and single["trace"]
        assert batch["ok"] and batch["trace"]
        # one line, one trace: every batch member shares it
        assert all(
            entry["trace"] == batch["trace"] for entry in batch["results"]
        )
        assert single["trace"] != batch["trace"]

    def test_no_trace_key_without_telemetry(self, catalog):
        from repro import obs

        with obs.use():
            with QueryEngine(catalog) as engine:
                response = handle_line(engine, '{"graph": "grid", "source": 0}')
        assert response["ok"] is True
        assert "trace" not in response

    def test_protocol_span_closes_each_query_line(self, catalog):
        from repro import obs

        sink = obs.ListSink()
        with obs.use(registry=obs.MetricsRegistry(), events=sink):
            with QueryEngine(catalog) as engine:
                handle_line(engine, '{"graph": "grid", "source": 0}')
        protocol_spans = [
            e for e in sink.of_type("span") if e["name"] == "protocol"
        ]
        assert len(protocol_spans) == 1
        assert protocol_spans[0]["seconds"] > 0

    def test_sampler_halves_span_traffic(self, catalog):
        from repro import obs
        from repro.obs.telemetry import TraceSampler

        sink = obs.ListSink()
        with obs.use(registry=obs.MetricsRegistry(), events=sink):
            with QueryEngine(catalog, cache_size=0) as engine:
                sampler = TraceSampler(0.5)
                for source in range(4):
                    line = f'{{"graph": "grid", "source": {source}}}'
                    response = handle_line(engine, line, sampler)
                    assert response["ok"] is True
        protocol_spans = [
            e for e in sink.of_type("span") if e["name"] == "protocol"
        ]
        assert len(protocol_spans) == 2  # every 2nd line, deterministically

    def test_unknown_op_mentions_metrics(self, catalog):
        from repro import obs

        with obs.use():
            with QueryEngine(catalog) as engine:
                response = handle_line(engine, '{"op": "nope"}')
        assert response["ok"] is False
        assert "metrics" in response["error"]


class TestProtocolSession:
    """The two-phase begin/finish path async transports rely on."""

    def test_begin_skips_blank_lines(self, catalog):
        with QueryEngine(catalog) as engine:
            session = ProtocolSession(engine)
            assert session.begin("") is None
            assert session.begin("   \n") is None

    def test_admin_ops_are_ready_immediately(self, catalog):
        with QueryEngine(catalog) as engine:
            session = ProtocolSession(engine)
            pending = session.begin('{"op": "stats"}')
            assert pending.ready
            assert pending.response["ok"] is True
            assert pending.wait() is pending.response

    def test_parse_errors_are_ready_immediately(self, catalog):
        with QueryEngine(catalog) as engine:
            session = ProtocolSession(engine)
            pending = session.begin("not json")
            assert pending.ready and pending.response["ok"] is False

    def test_query_without_submit_many_resolves_synchronously(self, catalog):
        with QueryEngine(catalog) as engine:
            session = ProtocolSession(engine)
            pending = session.begin('{"graph": "grid", "source": 0}')
            assert pending.ready  # plain engines answer in begin()
            assert pending.wait()["ok"] is True

    def test_query_with_submit_many_defers_to_the_future(self, catalog):
        """An engine exposing submit_many keeps begin() non-blocking."""
        import concurrent.futures

        class Deferred:
            def __init__(self, engine):
                self._engine = engine
                self.telemetry = engine.telemetry
                self.events = engine.events

            def submit_many(self, queries):
                future = concurrent.futures.Future()
                future.set_result(self._engine.run_many(queries))
                return future

        with QueryEngine(catalog) as engine:
            session = ProtocolSession(Deferred(engine))
            pending = session.begin('{"graph": "grid", "source": 0}')
            assert not pending.ready
            raw = pending.future.result()
            response = pending.finish(raw)
            assert response["ok"] is True
            assert pending.wait()["ok"] is True  # blocking path, same data

    def test_batched_reply_shape_matches_handle_line(self, catalog):
        line = '{"graph": "grid", "sources": [0, 1]}'
        with QueryEngine(catalog) as engine:
            session = ProtocolSession(engine)
            via_session = session.begin(line).wait()
            via_handle = handle_line(engine, line)

        def strip(d):
            d = {k: v for k, v in d.items() if k != "results"}
            return d

        assert strip(via_session) == strip(via_handle)

    def test_handle_counts_responses(self, catalog):
        with QueryEngine(catalog) as engine:
            session = ProtocolSession(engine)
            assert session.handle("") is None
            session.handle('{"op": "stats"}')
            session.handle('{"graph": "grid", "source": 0}')
            assert session.responses == 2

    def test_handle_answers_engine_crashes_in_band(self, catalog, monkeypatch):
        with QueryEngine(catalog) as engine:
            session = ProtocolSession(engine)

            def boom(query):
                raise RuntimeError("engine exploded")

            monkeypatch.setattr(engine, "run", boom)
            response = session.handle('{"graph": "grid", "source": 0}')
            assert response["ok"] is False
            assert "internal error" in response["error"]
            # the session keeps serving afterwards
            monkeypatch.undo()
            assert session.handle('{"op": "stats"}')["ok"] is True
