"""Tests for the CI perf gate (tools/perf_gate.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "perf_gate",
    Path(__file__).resolve().parent.parent / "tools" / "perf_gate.py",
)
perf_gate = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("perf_gate", perf_gate)
_SPEC.loader.exec_module(perf_gate)


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return path


def _results(tmp_path, **values):
    return _write(
        tmp_path / "metrics.json",
        {
            "schema": 1,
            "metrics": {
                name: {"type": "gauge", "value": value}
                for name, value in values.items()
            },
        },
    )


def _baseline(tmp_path, metrics):
    return _write(
        tmp_path / "baseline.json", {"schema": 1, "metrics": metrics}
    )


class TestLoadGauges:
    def test_reads_wrapped_snapshot(self, tmp_path):
        path = _results(tmp_path, **{"a.b": 2.5})
        assert perf_gate.load_gauges(path) == {"a.b": 2.5}

    def test_reads_bare_snapshot(self, tmp_path):
        path = _write(tmp_path / "bare.json", {"x": {"value": 1}})
        assert perf_gate.load_gauges(path) == {"x": 1.0}

    def test_skips_histograms_without_value(self, tmp_path):
        path = _write(
            tmp_path / "m.json",
            {"metrics": {"h": {"type": "histogram", "count": 3}}},
        )
        assert perf_gate.load_gauges(path) == {}


class TestCheckMetric:
    def test_higher_within_tolerance_passes(self):
        ok, _, _ = perf_gate.check_metric(
            "m", {"baseline": 10.0, "direction": "higher", "tolerance": 0.2}, 8.5
        )
        assert ok

    def test_higher_past_tolerance_fails(self):
        ok, _, verdict = perf_gate.check_metric(
            "m", {"baseline": 10.0, "direction": "higher", "tolerance": 0.2}, 7.9
        )
        assert not ok and "REGRESSED" in verdict

    def test_lower_within_tolerance_passes(self):
        ok, _, _ = perf_gate.check_metric(
            "m", {"baseline": 1.2, "direction": "lower", "tolerance": 0.25}, 1.45
        )
        assert ok

    def test_lower_past_tolerance_fails(self):
        ok, _, _ = perf_gate.check_metric(
            "m", {"baseline": 1.2, "direction": "lower", "tolerance": 0.25}, 1.6
        )
        assert not ok

    def test_missing_value_fails(self):
        ok, _, verdict = perf_gate.check_metric(
            "m", {"baseline": 1.0, "direction": "higher"}, None
        )
        assert not ok and "MISSING" in verdict

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            perf_gate.check_metric("m", {"baseline": 1.0, "direction": "up"}, 1.0)


class TestRunGate:
    def test_all_pass(self, tmp_path):
        results = _results(tmp_path, **{"speedup": 2.4})
        baseline = _baseline(
            tmp_path,
            {"speedup": {"baseline": 2.5, "direction": "higher", "tolerance": 0.3}},
        )
        rows, failures = perf_gate.run_gate(results, baseline)
        assert failures == 0
        assert rows[0]["status"] == "ok"

    def test_regression_and_missing_counted(self, tmp_path):
        results = _results(tmp_path, **{"speedup": 1.0})
        baseline = _baseline(
            tmp_path,
            {
                "speedup": {
                    "baseline": 2.5, "direction": "higher", "tolerance": 0.3
                },
                "gone": {
                    "baseline": 1.0, "direction": "lower", "tolerance": 0.1
                },
            },
        )
        _, failures = perf_gate.run_gate(results, baseline)
        assert failures == 2

    def test_unsupported_schema_rejected(self, tmp_path):
        results = _results(tmp_path, **{"x": 1.0})
        baseline = _write(tmp_path / "b.json", {"schema": 99, "metrics": {}})
        with pytest.raises(SystemExit, match="schema"):
            perf_gate.run_gate(results, baseline)


class TestMain:
    def test_passing_gate_exit_zero(self, tmp_path, capsys):
        results = _results(tmp_path, **{"qps": 100.0})
        baseline = _baseline(
            tmp_path,
            {"qps": {"baseline": 90.0, "direction": "higher", "tolerance": 0.5}},
        )
        code = perf_gate.main(
            ["--results", str(results), "--baseline", str(baseline)]
        )
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        results = _results(tmp_path, **{"qps": 10.0})
        baseline = _baseline(
            tmp_path,
            {"qps": {"baseline": 90.0, "direction": "higher", "tolerance": 0.5}},
        )
        code = perf_gate.main(
            ["--results", str(results), "--baseline", str(baseline)]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_results_exit_two(self, tmp_path):
        baseline = _baseline(tmp_path, {})
        code = perf_gate.main(
            ["--results", str(tmp_path / "none.json"), "--baseline", str(baseline)]
        )
        assert code == 2

    def test_update_reanchors_keeping_tolerance(self, tmp_path):
        results = _results(tmp_path, **{"qps": 123.4})
        baseline = _baseline(
            tmp_path,
            {"qps": {"baseline": 90.0, "direction": "higher", "tolerance": 0.5}},
        )
        code = perf_gate.main(
            ["--results", str(results), "--baseline", str(baseline), "--update"]
        )
        assert code == 0
        updated = json.loads(baseline.read_text())
        spec = updated["metrics"]["qps"]
        assert spec["baseline"] == 123.4
        assert spec["tolerance"] == 0.5
        assert spec["direction"] == "higher"

    def test_committed_baseline_gates_committed_results(self):
        """The repo's own baseline must gate the repo's own results —
        the pair ships green or CI would fail on the first run."""
        code = perf_gate.main([])
        assert code == 0
