"""Unit tests for the controller divergence watchdog."""

import math

import pytest

from repro.resilience import DivergenceGuard, GuardConfig


def _guard(initial=1.0, **kw):
    return DivergenceGuard(initial, GuardConfig(**kw)) if kw else DivergenceGuard(initial)


class TestTripConditions:
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf, 0.0, -1.0])
    def test_non_finite_or_nonpositive_delta(self, bad):
        guard = _guard()
        assert guard.observe(bad, 100.0)
        assert guard.diverged
        assert "non-finite" in guard.reason

    def test_runaway_high(self):
        guard = _guard(initial=1.0)
        assert guard.observe(2e9, 100.0)
        assert "runaway" in guard.reason

    def test_runaway_low(self):
        guard = _guard(initial=1.0)
        assert guard.observe(1e-10, 100.0)
        assert "runaway" in guard.reason

    def test_violent_delta_oscillation(self):
        guard = _guard(window=8)
        trips = [guard.observe(d, 100.0) for d in [0.1, 10.0] * 4]
        assert trips[:-1] == [False] * 7
        assert trips[-1] is True
        assert "oscillating delta" in guard.reason

    def test_violent_x2_oscillation(self):
        guard = _guard(window=8)
        # delta perfectly steady, workload slamming between extremes
        trips = [guard.observe(1.0, x2) for x2 in [1.0, 1000.0] * 4]
        assert trips[-1] is True
        assert "X^(2)" in guard.reason


class TestNoFalsePositives:
    def test_settling_controller_is_tolerated(self):
        """Damped alternation — the healthy convergence shape — must pass."""
        guard = _guard(window=8)
        delta, deltas = 2.0, []
        for k in range(12):
            deltas.append(delta)
            delta = 1.3 + (delta - 1.3) * -0.5  # damped ringing around 1.3
        for d in deltas:
            assert not guard.observe(d, 100.0)
        assert not guard.diverged

    def test_steady_growth_is_tolerated(self):
        guard = _guard(window=8)
        for k in range(20):
            assert not guard.observe(1.0 + 0.1 * k, 100.0 + k)

    def test_constant_delta_is_tolerated(self):
        guard = _guard(window=8)
        for _ in range(20):
            assert not guard.observe(1.0, 100.0)


class TestLatching:
    def test_latches_and_freezes_last_good(self):
        guard = _guard()
        assert not guard.observe(1.5, 10.0)
        assert not guard.observe(2.0, 10.0)
        assert guard.observe(math.nan, 10.0)
        assert guard.last_good_delta == 2.0
        # latched: sane observations afterwards change nothing
        assert guard.observe(1.0, 10.0)
        assert guard.last_good_delta == 2.0

    def test_last_good_defaults_to_initial(self):
        guard = _guard(initial=3.0)
        assert guard.observe(math.nan, 10.0)
        assert guard.last_good_delta == 3.0


class TestValidation:
    def test_initial_delta_must_be_finite_positive(self):
        with pytest.raises(ValueError, match="initial_delta"):
            DivergenceGuard(0.0)
        with pytest.raises(ValueError, match="initial_delta"):
            DivergenceGuard(math.nan)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 2},
            {"max_ratio": 1.0},
            {"oscillation_ratio": 0.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)
