"""Unit tests for the retry policy, classifier and result validation."""

from concurrent.futures import BrokenExecutor, CancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np
import pytest

from repro.resilience import (
    CorruptResultError,
    InjectedCrashError,
    InjectedTransientError,
    RetryPolicy,
    classify_error,
    validate_result,
)
from repro.sssp.result import SSSPResult


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_backoff_caps_at_max(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.5, jitter=0.0)
        assert policy.delay(10) == pytest.approx(2.5)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25, seed=3)
        d1 = policy.delay(1, key="q")
        assert 0.075 <= d1 <= 0.125
        # same (seed, key, attempt) => same delay, on any run or host
        assert RetryPolicy(base_delay=0.1, jitter=0.25, seed=3).delay(1, key="q") == d1

    def test_distinct_keys_desynchronise(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25, seed=0)
        assert policy.delay(1, key="a") != policy.delay(1, key="b")

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestClassifier:
    @pytest.mark.parametrize(
        "exc",
        [
            TimeoutError("t"),
            FutureTimeoutError(),
            BrokenExecutor("b"),
            CancelledError(),
            ConnectionError("c"),
            InjectedCrashError("x"),
            InjectedTransientError("x"),
            CorruptResultError("x"),
            MemoryError(),
            OSError("disk"),
        ],
    )
    def test_transient(self, exc):
        assert classify_error(exc) == "transient"

    @pytest.mark.parametrize(
        "exc", [ValueError("v"), KeyError("k"), TypeError("t"), RuntimeError("r")]
    )
    def test_permanent(self, exc):
        assert classify_error(exc) == "permanent"

    def test_transient_attribute_wins(self):
        exc = RuntimeError("flaky")
        exc.transient = True
        assert classify_error(exc) == "transient"


def _result(dist, source=0):
    return SSSPResult(
        dist=np.asarray(dist, dtype=float),
        source=source,
        iterations=1,
        relaxations=1,
        algorithm="dijkstra",
    )


class TestValidateResult:
    def test_good_result_passes(self):
        validate_result(_result([0.0, 1.0, np.inf]), num_nodes=3, source=0)

    def test_not_a_result(self):
        with pytest.raises(CorruptResultError, match="not an SSSP result"):
            validate_result("garbage", num_nodes=3, source=0)

    def test_wrong_shape(self):
        with pytest.raises(CorruptResultError, match="shape"):
            validate_result(_result([0.0, 1.0]), num_nodes=3, source=0)

    def test_nonzero_source_distance(self):
        with pytest.raises(CorruptResultError, match="source"):
            validate_result(_result([0.5, 1.0, 2.0]), num_nodes=3, source=0)

    def test_negative_distance(self):
        with pytest.raises(CorruptResultError, match="negative"):
            validate_result(_result([0.0, -1.0, 2.0]), num_nodes=3, source=0)

    def test_nan_distance(self):
        with pytest.raises(CorruptResultError, match="NaN"):
            validate_result(_result([0.0, np.nan, 2.0]), num_nodes=3, source=0)


class TestRestartPolicy:
    def test_delay_schedule_matches_retry_backoff(self):
        from repro.resilience import RestartPolicy

        policy = RestartPolicy(
            budget=4, base_delay=0.1, max_delay=10.0, multiplier=2.0,
            jitter=0.0,
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_delay_caps_at_max_delay(self):
        from repro.resilience import RestartPolicy

        policy = RestartPolicy(budget=3, base_delay=10.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(2.0)  # default max_delay

    def test_budget_exhaustion(self):
        from repro.resilience import RestartPolicy

        policy = RestartPolicy(budget=2)
        assert not policy.exhausted(0)
        assert not policy.exhausted(1)
        assert policy.exhausted(2)
        zero = RestartPolicy(budget=0)
        assert zero.exhausted(0)

    def test_max_recovery_bounds_the_whole_schedule(self):
        from repro.resilience import RestartPolicy

        policy = RestartPolicy(
            budget=3, base_delay=0.1, max_delay=1.0, multiplier=2.0,
            jitter=0.0,
        )
        # 0.1 + 0.2 + 0.4, no jitter slack
        assert policy.max_recovery_seconds() == pytest.approx(0.7)
        jittered = RestartPolicy(
            budget=3, base_delay=0.1, max_delay=1.0, multiplier=2.0,
            jitter=0.5,
        )
        assert jittered.max_recovery_seconds() == pytest.approx(0.7 * 1.5)
        for restart in (1, 2, 3):
            assert jittered.delay(restart, key="shard:0") <= (
                jittered.max_recovery_seconds()
            )

    def test_deterministic_jitter_per_key(self):
        from repro.resilience import RestartPolicy

        a = RestartPolicy(budget=3, jitter=0.3, seed=5)
        b = RestartPolicy(budget=3, jitter=0.3, seed=5)
        assert a.delay(1, key="shard:0") == b.delay(1, key="shard:0")
        assert a.delay(1, key="shard:0") != a.delay(1, key="shard:1")

    def test_rejects_negative_budget(self):
        from repro.resilience import RestartPolicy

        with pytest.raises(ValueError, match="budget"):
            RestartPolicy(budget=-1)
