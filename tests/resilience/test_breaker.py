"""Unit tests for the circuit breaker, driven by a fake clock."""

import pytest

from repro import obs
from repro.resilience import BreakerBoard, BreakerConfig, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def _breaker(clock, threshold=3, reset=10.0):
    return CircuitBreaker(
        BreakerConfig(failure_threshold=threshold, reset_seconds=reset),
        clock=clock,
    )


class TestCircuitBreaker:
    def test_closed_allows(self, clock):
        assert _breaker(clock).allow()

    def test_opens_after_threshold_consecutive_failures(self, clock):
        b = _breaker(clock, threshold=3)
        assert b.record_failure() is False
        assert b.record_failure() is False
        assert b.record_failure() is True  # this one opened it
        assert b.state == "open"
        assert not b.allow()

    def test_success_resets_the_streak(self, clock):
        b = _breaker(clock, threshold=3)
        b.record_failure()
        b.record_failure()
        b.record_success()
        assert b.record_failure() is False
        assert b.state == "closed"

    def test_half_open_after_reset_window(self, clock):
        b = _breaker(clock, threshold=1, reset=10.0)
        b.record_failure()
        assert not b.allow()
        clock.advance(10.0)
        assert b.state == "half-open"

    def test_half_open_admits_exactly_one_probe(self, clock):
        b = _breaker(clock, threshold=1, reset=10.0)
        b.record_failure()
        clock.advance(10.0)
        assert b.allow()  # the probe
        assert not b.allow()  # everyone else waits for the verdict

    def test_probe_success_closes(self, clock):
        b = _breaker(clock, threshold=1, reset=10.0)
        b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        b.record_success()
        assert b.state == "closed"
        assert b.allow() and b.allow()

    def test_probe_failure_reopens_and_restarts_timer(self, clock):
        b = _breaker(clock, threshold=5, reset=10.0)
        for _ in range(5):
            b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        # one failed probe re-opens even though 1 < threshold
        assert b.record_failure() is True
        assert b.state == "open"
        clock.advance(5.0)
        assert not b.allow()  # timer restarted at the probe failure
        clock.advance(5.0)
        assert b.allow()

    def test_threshold_zero_never_opens(self, clock):
        b = _breaker(clock, threshold=0)
        for _ in range(100):
            b.record_failure()
        assert b.state == "closed"
        assert b.allow()

    def test_snapshot_shape(self, clock):
        b = _breaker(clock, threshold=1)
        b.record_failure()
        clock.advance(2.0)
        snap = b.snapshot()
        assert snap["state"] == "open"
        assert snap["consecutive_failures"] == 1
        assert snap["opens"] == 1
        assert snap["open_for_seconds"] == pytest.approx(2.0)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=-1)
        with pytest.raises(ValueError, match="reset_seconds"):
            BreakerConfig(reset_seconds=0.0)


class TestBreakerBoard:
    def test_corridors_are_independent(self, clock):
        board = BreakerBoard(BreakerConfig(failure_threshold=1), clock=clock)
        board.record_failure("cal", "adaptive")
        assert not board.allow("cal", "adaptive")
        assert board.allow("cal", "dijkstra")
        assert board.allow("wiki", "adaptive")

    def test_snapshot_sorted_and_tagged(self, clock):
        board = BreakerBoard(BreakerConfig(failure_threshold=1), clock=clock)
        board.allow("wiki", "adaptive")
        board.allow("cal", "dijkstra")
        snap = board.snapshot()
        assert [(s["graph"], s["algorithm"]) for s in snap] == [
            ("cal", "dijkstra"),
            ("wiki", "adaptive"),
        ]

    def test_open_count(self, clock):
        board = BreakerBoard(BreakerConfig(failure_threshold=1), clock=clock)
        board.record_failure("cal", "adaptive")
        board.record_failure("wiki", "adaptive")
        board.allow("cal", "dijkstra")
        assert board.open_count() == 2

    def test_metrics_and_events(self, clock):
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=registry, events=sink):
            board = BreakerBoard(BreakerConfig(failure_threshold=1), clock=clock)
            board.record_failure("cal", "adaptive")  # opens
            assert not board.allow("cal", "adaptive")  # rejection
            clock.advance(board.config.reset_seconds)
            assert board.allow("cal", "adaptive")  # probe
            board.record_success("cal", "adaptive")  # closes
        assert registry.counter("service.breaker.opened").value == 1
        assert registry.counter("service.breaker.closed").value == 1
        assert registry.counter("service.breaker.rejections").value == 1
        assert len(sink.of_type("breaker_open")) == 1
        assert len(sink.of_type("breaker_close")) == 1
