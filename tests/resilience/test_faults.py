"""Unit tests for the deterministic fault-injection harness."""

import math

import numpy as np
import pytest

from repro.core.controller import ControllerConfig, DeltaDecision, SetpointController
from repro.resilience import (
    FAULT_KINDS,
    DivergentController,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    InjectedTransientError,
    apply_fault,
)
from repro.sssp.result import SSSPResult


class TestFaultPlan:
    def test_decide_is_deterministic(self):
        a = FaultPlan(rate=0.5, seed=42)
        b = FaultPlan(rate=0.5, seed=42)
        assert [a.decide(i) for i in range(50)] == [b.decide(i) for i in range(50)]

    def test_decide_is_index_local(self):
        """Calling decide out of order changes nothing — no hidden RNG state."""
        plan = FaultPlan(rate=0.5, seed=7)
        forward = [plan.decide(i) for i in range(20)]
        backward = [plan.decide(i) for i in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_seed_changes_the_schedule(self):
        a = FaultPlan(rate=0.5, seed=1)
        b = FaultPlan(rate=0.5, seed=2)
        assert [a.decide(i) for i in range(50)] != [b.decide(i) for i in range(50)]

    def test_rate_extremes(self):
        assert FaultPlan(rate=0.0).count(100) == 0
        assert FaultPlan(rate=1.0).count(100) == 100

    def test_count_roughly_tracks_rate(self):
        assert 10 <= FaultPlan(rate=0.3, seed=0).count(100) <= 50

    def test_kinds_drawn_from_pool(self):
        plan = FaultPlan(rate=1.0, kinds=("crash",))
        assert all(plan.decide(i).kind == "crash" for i in range(10))

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_bad_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(rate=rate)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(rate=0.5, kinds=("segfault",))

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError, match="kinds"):
            FaultPlan(rate=0.5, kinds=())

    def test_parse_kinds(self):
        assert FaultPlan.parse_kinds("crash, hang") == ("crash", "hang")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse_kinds("crash,nonsense")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor")
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultSpec(kind="hang", hang_seconds=-1.0)


class TestApplyFault:
    def test_none_runs_clean(self):
        assert apply_fault(None, lambda: 41 + 1) == 42

    def test_transient_raises_before_running(self):
        ran = []
        with pytest.raises(InjectedTransientError):
            apply_fault(FaultSpec("transient"), lambda: ran.append(1))
        assert not ran

    def test_crash_raises(self):
        with pytest.raises(InjectedCrashError):
            apply_fault(FaultSpec("crash"), lambda: 1)

    def test_poolbreak_degrades_to_crash_on_threads(self):
        """Outside a process worker, poolbreak must NOT kill the host."""
        with pytest.raises(InjectedCrashError, match="poolbreak"):
            apply_fault(FaultSpec("poolbreak"), lambda: 1, in_process_worker=False)

    def test_hang_delays_then_runs(self):
        out = apply_fault(FaultSpec("hang", hang_seconds=0.0), lambda: "done")
        assert out == "done"

    def test_corrupt_negates_finite_distances(self):
        result = SSSPResult(
            dist=np.array([0.0, 1.0, np.inf]),
            source=0,
            iterations=1,
            relaxations=2,
            algorithm="dijkstra",
        )
        bad = apply_fault(FaultSpec("corrupt"), lambda: result)
        assert (bad.dist[np.isfinite(bad.dist)] < 0).all()
        assert np.isinf(bad.dist[2])

    def test_corrupt_junk_for_non_results(self):
        assert apply_fault(FaultSpec("corrupt"), lambda: 17) == "corrupted-result"


_PLAN_KW = dict(
    window_lower=0.0,
    window_split=1.0,
    far_total=100,
    far_partition_size=10,
    far_partition_upper=2.0,
)


class TestDivergentController:
    def _controller(self):
        return SetpointController(
            ControllerConfig(setpoint=100.0), 1.0, initial_d=4.0
        )

    def test_sane_until_after(self):
        inner = self._controller()
        proxy = DivergentController(inner, after=2)
        for k in range(2):
            proxy.begin_iteration(10)
            proxy.observe_advance(10, 40)
            decision = proxy.plan(10, **_PLAN_KW)
            assert math.isfinite(decision.delta)

    def test_poisons_after_n_decisions(self):
        proxy = DivergentController(self._controller(), after=1)
        proxy.begin_iteration(10)
        proxy.observe_advance(10, 40)
        assert math.isfinite(proxy.plan(10, **_PLAN_KW).delta)
        poisoned = proxy.plan(10, **_PLAN_KW)
        assert isinstance(poisoned, DeltaDecision)
        assert math.isnan(poisoned.delta)

    def test_custom_schedule(self):
        import itertools

        proxy = DivergentController(
            self._controller(), after=0, schedule=itertools.cycle([1e-12, 1e12])
        )
        assert proxy.plan(10, **_PLAN_KW).delta == 1e-12
        assert proxy.plan(10, **_PLAN_KW).delta == 1e12

    def test_delegates_everything_else(self):
        inner = self._controller()
        proxy = DivergentController(inner, after=3)
        assert proxy.setpoint == inner.setpoint
        assert proxy.delta == inner.delta


class TestNetFaultKinds:
    def test_net_kinds_are_registered_but_distinct(self):
        from repro.resilience import (
            ALL_FAULT_KINDS,
            NET_FAULT_KINDS,
            WORKER_FAULT_KINDS,
        )

        assert set(NET_FAULT_KINDS) == {
            "shard_crash", "dispatcher_hang", "slow_shard", "conn_drop",
            "worker_kill", "worker_oom", "frame_corrupt",
        }
        assert set(WORKER_FAULT_KINDS) == {
            "worker_kill", "worker_oom", "frame_corrupt",
        }
        assert set(WORKER_FAULT_KINDS) <= set(NET_FAULT_KINDS)
        assert set(NET_FAULT_KINDS) <= set(ALL_FAULT_KINDS)
        assert not set(NET_FAULT_KINDS) & set(FAULT_KINDS)

    def test_spec_accepts_net_kinds(self):
        spec = FaultSpec(kind="shard_crash")
        assert spec.kind == "shard_crash"

    def test_apply_fault_rejects_net_kinds(self):
        """Pool tasks never execute a network-tier fault."""
        for kind in ("shard_crash", "dispatcher_hang", "slow_shard",
                     "conn_drop", "worker_kill", "worker_oom",
                     "frame_corrupt"):
            with pytest.raises(ValueError, match="network-tier"):
                apply_fault(FaultSpec(kind=kind), lambda: 1)

    def test_injected_shard_crash_escapes_except_exception(self):
        from repro.resilience import InjectedShardCrash

        assert issubclass(InjectedShardCrash, BaseException)
        assert not issubclass(InjectedShardCrash, Exception)


class TestScheduledFaultPlan:
    def _plan(self, **kw):
        from repro.resilience import ScheduledFaultPlan

        return ScheduledFaultPlan(**kw)

    def test_fires_exactly_at_scheduled_indices(self):
        plan = self._plan(at=(2, 5), kind="shard_crash")
        decisions = [plan.decide(i) for i in range(8)]
        hits = [i for i, d in enumerate(decisions) if d is not None]
        assert hits == [2, 5]
        assert all(decisions[i].kind == "shard_crash" for i in hits)

    def test_count_honours_task_bound(self):
        plan = self._plan(at=(1, 3, 99))
        assert plan.count(4) == 2
        assert plan.count(100) == 3

    def test_carries_tuning_knobs(self):
        plan = self._plan(
            at=(0,), kind="dispatcher_hang", hang_seconds=1.5,
        )
        spec = plan.decide(0)
        assert spec.hang_seconds == 1.5
        slow = self._plan(at=(0,), kind="slow_shard", slow_seconds=0.4)
        assert slow.decide(0).slow_seconds == 0.4

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            self._plan(at=(0,), kind="segfault")
        with pytest.raises(ValueError):
            self._plan(at=(-1,))


class TestPlanWireFormat:
    """plan_to_wire / plan_from_wire: fault plans over the frame socket."""

    def test_scheduled_plan_round_trips(self):
        from repro.resilience import (
            ScheduledFaultPlan,
            plan_from_wire,
            plan_to_wire,
        )

        plan = ScheduledFaultPlan(
            at=(2, 5), kind="worker_kill", hang_seconds=1.5, slow_seconds=0.2
        )
        wire = plan_to_wire(plan)
        assert wire["type"] == "scheduled"
        import json

        json.dumps(wire)  # must be JSON-safe as-is
        assert plan_from_wire(wire) == plan

    def test_seeded_plan_round_trips(self):
        from repro.resilience import FaultPlan, plan_from_wire, plan_to_wire

        plan = FaultPlan(rate=0.25, seed=11, kinds=("crash", "transient"))
        wire = plan_to_wire(plan)
        assert wire["type"] == "seeded"
        assert plan_from_wire(wire) == plan

    def test_none_round_trips(self):
        from repro.resilience import plan_from_wire, plan_to_wire

        assert plan_to_wire(None) is None
        assert plan_from_wire(None) is None

    def test_unknown_shapes_rejected(self):
        from repro.resilience import plan_from_wire, plan_to_wire

        with pytest.raises(TypeError):
            plan_to_wire(object())
        with pytest.raises(ValueError):
            plan_from_wire({"type": "astral"})
