"""The acceptance drills: a faulted 100-query batch and a divergent run.

These are the end-to-end guarantees the resilience layer exists for:

* under a seeded fault plan sabotaging ~30% of pool tasks, a 100-query
  batch returns *correct distances for every query* (cross-checked
  against clean Dijkstra runs) and the cache is never poisoned;
* a run whose controller is forced to diverge (NaN deltas) completes
  through the static-delta fallback with distances identical to plain
  near-far.
"""

import itertools

import numpy as np
import pytest

from repro import obs
from repro.core import AdaptiveParams
from repro.core.stepwise import AdaptiveNearFarStepper
from repro.graph.generators import grid_road_network
from repro.resilience import DivergentController, FaultPlan, RetryPolicy
from repro.service import GraphCatalog, QueryEngine, SSSPQuery
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import nearfar_sssp
from repro.sssp.result import assert_distances_close


@pytest.fixture(scope="module")
def graph():
    return grid_road_network(12, 12, seed=3)


@pytest.fixture
def catalog(graph):
    cat = GraphCatalog()
    cat.register("grid", graph)
    return cat


class TestChaosBatch:
    def test_hundred_queries_under_faults_all_correct(self, catalog, graph):
        plan = FaultPlan(
            rate=0.3,
            seed=11,
            kinds=("transient", "crash", "hang", "corrupt"),
            hang_seconds=0.005,
        )
        rng = np.random.default_rng(0)
        queries = [
            SSSPQuery("grid", int(s), "dijkstra")
            for s in rng.integers(0, graph.num_nodes, size=100)
        ]
        with QueryEngine(
            catalog,
            max_workers=4,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=6, base_delay=0.001),
        ) as engine:
            responses = engine.run_many(queries)

            bad = [r.error for r in responses if not r.ok]
            assert not bad, f"unanswered queries under faults: {bad}"

            # every answer — and every cached distance vector — must
            # match a clean Dijkstra run on the same source
            reference = {}
            for query, response in zip(queries, responses):
                if query.source not in reference:
                    reference[query.source] = dijkstra(graph, query.source)
                ref = reference[query.source]
                assert response.reached == ref.num_reached
                finite = ref.finite_distances()
                assert response.max_dist == pytest.approx(float(finite.max()))
                assert response.mean_dist == pytest.approx(float(finite.mean()))
                cached = engine.cache.get(engine._cache_key(query))
                assert cached is not None, "settled query missing from cache"
                assert_distances_close(cached.dist, ref.dist)

            # the drill was real: faults were injected and absorbed
            assert engine.retry_attempts > 0
            assert engine.retry_exhausted == 0
            assert engine.breakers.open_count() == 0

    def test_poisoned_attempts_never_cached(self, catalog, graph):
        """Corrupt-only plan at rate 1.0: every first attempt is corrupt,
        every retry is corrupt too — nothing may reach the cache."""
        plan = FaultPlan(rate=1.0, seed=0, kinds=("corrupt",))
        with QueryEngine(
            catalog,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        ) as engine:
            response = engine.run(SSSPQuery("grid", 0, "dijkstra"))
        assert not response.ok
        assert response.attempts == 2
        assert len(engine.cache) == 0
        assert engine.retry_exhausted == 1


class TestDivergentControllerRun:
    def test_nan_controller_falls_back_and_stays_exact(self, graph):
        registry = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=registry, events=sink):
            stepper = AdaptiveNearFarStepper(
                graph, 0, AdaptiveParams(setpoint=300.0)
            )
            stepper.controller = DivergentController(stepper.controller, after=3)
            result = stepper.run()

        assert result.extra["controller_fallback"] is True
        assert "non-finite" in result.extra["fallback_reason"]
        assert np.isfinite(result.extra["final_delta"])

        # distances identical to plain near-far (both are exact)
        reference, _ = nearfar_sssp(graph, 0)
        assert_distances_close(result, reference)
        assert_distances_close(result, dijkstra(graph, 0))

        assert registry.counter("controller.fallbacks").value == 1
        events = sink.of_type("controller_fallback")
        assert len(events) == 1
        assert events[0]["fallback_delta"] == result.extra["final_delta"]

    def test_oscillating_controller_trips_the_window_rule(self, graph):
        stepper = AdaptiveNearFarStepper(
            graph, 0, AdaptiveParams(setpoint=300.0, guard_window=4)
        )
        # swings violent enough for the window rule (mean |Δδ| > 1.5 ×
        # mean δ) but small enough that the run lasts past the window
        stepper.controller = DivergentController(
            stepper.controller,
            after=0,
            schedule=itertools.cycle([stepper.initial_delta * 0.2,
                                      stepper.initial_delta * 2.0]),
        )
        result = stepper.run()
        assert result.extra["controller_fallback"] is True
        assert_distances_close(result, dijkstra(graph, 0))

    def test_guard_can_be_disabled(self, graph):
        stepper = AdaptiveNearFarStepper(
            graph, 0, AdaptiveParams(setpoint=300.0, use_guard=False)
        )
        assert stepper.guard is None
        # a healthy controller completes exactly as before
        result = stepper.run()
        assert result.extra["controller_fallback"] is False
        assert_distances_close(result, dijkstra(graph, 0))
