"""Unit tests for convergence diagnostics."""

import numpy as np
import pytest

from repro.core import AdaptiveParams, adaptive_sssp
from repro.graph.generators import grid_road_network
from repro.instrument.convergence import (
    ControllerDynamics,
    analyze_controller,
    settling_iteration,
)
from repro.instrument.trace import RunTrace


class TestSettlingIteration:
    def test_settled_from_start(self):
        assert settling_iteration(np.asarray([10.0, 10.1, 9.9])) == 0

    def test_settles_mid_series(self):
        x = np.asarray([100.0, 50.0, 10.0, 10.2, 9.9, 10.0])
        assert settling_iteration(x) == 2

    def test_never_settles(self):
        x = np.asarray([1.0, 100.0, 1.0, 100.0, 1.0])
        assert settling_iteration(x, target=50.0, band=0.1) == 5

    def test_explicit_target(self):
        x = np.asarray([1.0, 5.0, 5.1])
        assert settling_iteration(x, target=5.0, band=0.25) == 1

    def test_band_width_matters(self):
        x = np.asarray([8.0, 10.0])
        assert settling_iteration(x, target=10.0, band=0.3) == 0
        assert settling_iteration(x, target=10.0, band=0.1) == 1

    def test_empty(self):
        assert settling_iteration(np.zeros(0)) == 0

    def test_zero_target_never_settles(self):
        assert settling_iteration(np.asarray([0.0, 0.0]), target=0.0) == 2


class TestAnalyzeController:
    @pytest.fixture(scope="class")
    def run(self):
        g = grid_road_network(60, 60, seed=2)
        setpoint = 400.0
        _, trace, _ = adaptive_sssp(g, 0, AdaptiveParams(setpoint=setpoint))
        return trace, setpoint

    def test_dynamics_populated(self, run):
        trace, setpoint = run
        dyn = analyze_controller(trace, setpoint)
        assert dyn.iterations == len(trace)
        assert 0 <= dyn.parallelism_entry <= dyn.iterations
        assert dyn.parallelism_overshoot > 0
        assert np.isfinite(dyn.steady_tracking_error)

    def test_control_becomes_effective_quickly(self, run):
        """The paper's "about 5 iterations" claim, measured by effect:
        the parallelism band is entered within a few percent of the
        run.  (alpha itself keeps *tracking* local graph density for
        the whole run — settling-vs-final is the wrong yardstick for
        it, which is why ControllerDynamics reports but does not
        assert on it.)"""
        trace, setpoint = run
        dyn = analyze_controller(trace, setpoint)
        # band entry includes the physical frontier ramp-up (a road
        # network's wavefront takes ~sqrt(P) iterations to reach P
        # vertices no matter what the controller does)
        assert dyn.parallelism_entry <= dyn.iterations // 3
        assert dyn.d_settling <= max(10, dyn.iterations // 10)

    def test_band_entry_before_end(self, run):
        trace, setpoint = run
        dyn = analyze_controller(trace, setpoint)
        assert dyn.parallelism_entry < dyn.iterations

    def test_as_row(self, run):
        trace, setpoint = run
        row = analyze_controller(trace, setpoint).as_row()
        assert set(row) >= {"iterations", "d settle", "alpha settle"}

    def test_empty_trace(self):
        trace = RunTrace(algorithm="x", graph_name="g", source=0)
        dyn = analyze_controller(trace, 10.0)
        assert dyn.iterations == 0

    def test_rejects_bad_setpoint(self, run):
        trace, _ = run
        with pytest.raises(ValueError):
            analyze_controller(trace, 0.0)
