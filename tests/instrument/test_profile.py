"""Unit tests for parallelism profiles."""

import numpy as np
import pytest

from repro.instrument.profile import make_profile, profile_from_trace
from repro.instrument.trace import IterationRecord, RunTrace


def _trace(parallelisms):
    t = RunTrace(algorithm="nearfar", graph_name="g", source=0)
    for k, p in enumerate(parallelisms):
        t.append(
            IterationRecord(
                k=k, x1=1, x2=p, x3=p, x4=p, delta=1.0, split=1.0, far_size=0
            )
        )
    return t


class TestProfile:
    def test_from_trace(self):
        prof = profile_from_trace(_trace([10, 20, 30]))
        assert prof.label == "nearfar"
        assert prof.num_iterations == 3
        assert prof.summary.mean == pytest.approx(20.0)

    def test_custom_label(self):
        prof = profile_from_trace(_trace([1]), label="custom")
        assert prof.label == "custom"

    def test_dynamic_range(self):
        prof = make_profile("x", np.asarray([10.0, 1000.0]))
        assert prof.dynamic_range == pytest.approx(100.0)

    def test_dynamic_range_small_values_floored(self):
        prof = make_profile("x", np.asarray([0.5, 8.0]))
        # min positive below 1 is floored at 1
        assert prof.dynamic_range == pytest.approx(8.0)

    def test_dynamic_range_empty(self):
        prof = make_profile("x", np.zeros(0))
        assert prof.dynamic_range == 0.0

    def test_steady_state_trims_warmup(self):
        series = np.concatenate([np.full(10, 1000.0), np.full(90, 10.0)])
        prof = make_profile("x", series)
        steady = prof.steady_state(skip_fraction=0.1)
        assert steady.num_iterations == 90
        assert steady.summary.maximum == 10.0

    def test_density_fields_consistent(self):
        prof = make_profile("x", np.asarray([1.0, 2.0, 4.0, 8.0] * 10))
        assert prof.density_edges.size == prof.density.size + 1
