"""Unit tests for trace containers."""

import numpy as np
import pytest

from repro.instrument.trace import IterationRecord, RunTrace


def _trace(parallelisms):
    t = RunTrace(algorithm="test", graph_name="g", source=0)
    for k, p in enumerate(parallelisms):
        t.append(
            IterationRecord(
                k=k, x1=1, x2=p, x3=p, x4=p, delta=float(k + 1),
                split=1.0, far_size=0, controller_seconds=0.001,
            )
        )
    return t


class TestRunTrace:
    def test_len_and_iter(self):
        t = _trace([1, 2, 3])
        assert len(t) == 3
        assert [r.x2 for r in t] == [1, 2, 3]

    def test_column(self):
        t = _trace([5, 10])
        assert list(t.column("x2")) == [5.0, 10.0]
        assert list(t.deltas) == [1.0, 2.0]

    def test_parallelism_is_x2(self):
        t = _trace([7])
        assert t.records[0].parallelism == 7
        assert list(t.parallelism) == [7.0]

    def test_average_parallelism(self):
        t = _trace([10, 20, 30])
        assert t.average_parallelism == pytest.approx(20.0)

    def test_average_parallelism_empty(self):
        assert _trace([]).average_parallelism == 0.0

    def test_cv(self):
        constant = _trace([10, 10, 10])
        assert constant.parallelism_cv == 0.0
        varied = _trace([1, 100])
        assert varied.parallelism_cv > 0.5

    def test_cv_zero_mean(self):
        assert _trace([0, 0]).parallelism_cv == 0.0

    def test_total_edges(self):
        assert _trace([5, 6]).total_edges_expanded == 11

    def test_controller_seconds_sum(self):
        assert _trace([1, 2, 3]).controller_seconds == pytest.approx(0.003)

    def test_controller_defaults_nan(self):
        rec = IterationRecord(
            k=0, x1=1, x2=1, x3=1, x4=1, delta=1.0, split=1.0, far_size=0
        )
        assert np.isnan(rec.d_estimate)
        assert np.isnan(rec.alpha_estimate)
