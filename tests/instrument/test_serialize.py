"""Tests for trace serialisation."""

import json

import numpy as np
import pytest

from repro.core import AdaptiveParams, adaptive_sssp
from repro.gpusim.device import JETSON_TK1
from repro.gpusim.dvfs import FixedDVFS
from repro.gpusim.executor import simulate_run
from repro.instrument.serialize import (
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.instrument.trace import IterationRecord, RunTrace
from repro.sssp.nearfar import nearfar_sssp


class TestRoundTrip:
    def test_baseline_trace(self, small_grid, tmp_path):
        _, trace = nearfar_sssp(small_grid, 0)
        path = save_trace(trace, tmp_path / "t.json")
        back = load_trace(path)
        assert back.algorithm == trace.algorithm
        assert back.graph_name == trace.graph_name
        assert len(back) == len(trace)
        assert np.array_equal(back.parallelism, trace.parallelism)
        assert np.array_equal(back.deltas, trace.deltas)

    def test_adaptive_trace_with_controller_columns(self, small_grid, tmp_path):
        _, trace, _ = adaptive_sssp(small_grid, 0, AdaptiveParams(setpoint=200.0))
        back = load_trace(save_trace(trace, tmp_path / "t.json"))
        assert np.allclose(back.column("d_estimate"), trace.column("d_estimate"))
        assert np.allclose(
            back.column("alpha_estimate"), trace.column("alpha_estimate")
        )

    def test_nan_columns_survive(self, tmp_path):
        trace = RunTrace(algorithm="x", graph_name="g", source=0)
        trace.append(
            IterationRecord(
                k=0, x1=1, x2=2, x3=1, x4=1, delta=1.0, split=1.0, far_size=0
            )
        )
        back = load_trace(save_trace(trace, tmp_path / "t.json"))
        assert np.isnan(back.records[0].d_estimate)

    def test_replay_identical_simulation(self, small_grid, tmp_path):
        """The whole point: a reloaded trace costs identically."""
        _, trace = nearfar_sssp(small_grid, 0)
        back = load_trace(save_trace(trace, tmp_path / "t.json"))
        policy = FixedDVFS.max_performance(JETSON_TK1)
        a = simulate_run(trace, JETSON_TK1, policy)
        b = simulate_run(back, JETSON_TK1, policy)
        assert a.total_seconds == pytest.approx(b.total_seconds)
        assert a.total_energy_j == pytest.approx(b.total_energy_j)

    def test_file_is_plain_json(self, small_grid, tmp_path):
        _, trace = nearfar_sssp(small_grid, 0)
        path = save_trace(trace, tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == 2
        assert isinstance(payload["records"], list)

    def test_explicit_nan_controller_fields(self, tmp_path):
        """NaN d/alpha estimates survive the JSON round trip as NaN."""
        trace = RunTrace(algorithm="x", graph_name="g", source=0)
        trace.append(
            IterationRecord(
                k=0,
                x1=1,
                x2=2,
                x3=1,
                x4=1,
                delta=1.0,
                split=1.0,
                far_size=0,
                d_estimate=float("nan"),
                alpha_estimate=float("nan"),
            )
        )
        path = save_trace(trace, tmp_path / "t.json")
        # NaN is not valid JSON: it must be encoded as null on disk
        assert "NaN" not in path.read_text()
        back = load_trace(path)
        assert np.isnan(back.records[0].d_estimate)
        assert np.isnan(back.records[0].alpha_estimate)

    def test_mixed_nan_and_finite_columns(self, tmp_path):
        trace = RunTrace(algorithm="x", graph_name="g", source=0)
        for k, d in enumerate([float("nan"), 2.5, float("nan")]):
            trace.append(
                IterationRecord(
                    k=k,
                    x1=1,
                    x2=2,
                    x3=1,
                    x4=1,
                    delta=1.0,
                    split=1.0,
                    far_size=0,
                    d_estimate=d,
                    alpha_estimate=d,
                )
            )
        back = trace_from_dict(trace_to_dict(trace))
        col = back.column("d_estimate")
        assert np.isnan(col[0]) and np.isnan(col[2])
        assert col[1] == 2.5

    def test_meta_round_trip(self, small_grid, tmp_path):
        from repro.core import AdaptiveParams, adaptive_sssp

        _, trace, _ = adaptive_sssp(small_grid, 0, AdaptiveParams(setpoint=200.0))
        back = load_trace(save_trace(trace, tmp_path / "t.json"))
        assert back.meta["setpoint"] == 200.0
        assert back.meta["initial_delta"] == trace.meta["initial_delta"]

    def test_v1_payload_still_loads(self, small_grid):
        """Pre-meta traces (schema 1) load with an empty meta dict."""
        _, trace = nearfar_sssp(small_grid, 0)
        payload = trace_to_dict(trace)
        payload["schema"] = 1
        del payload["meta"]
        back = trace_from_dict(payload)
        assert back.meta == {}
        assert len(back) == len(trace)


class TestValidation:
    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            trace_from_dict({"schema": 99})

    def test_unknown_fields_rejected(self, small_grid):
        _, trace = nearfar_sssp(small_grid, 0)
        payload = trace_to_dict(trace)
        payload["records"][0]["bogus"] = 1
        with pytest.raises(ValueError, match="unknown record fields"):
            trace_from_dict(payload)
