"""Unit tests for distribution statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument.stats import (
    density_histogram,
    iqr_fraction_near,
    summarize,
)


class TestSummarize:
    def test_five_number_summary(self):
        s = summarize(np.asarray([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert s.count == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0
        assert s.p25 == 2.0
        assert s.p75 == 4.0
        assert s.iqr == 2.0

    def test_empty(self):
        s = summarize(np.zeros(0))
        assert s.count == 0
        assert s.cv == 0.0

    def test_empty_is_all_zero(self):
        s = summarize(np.zeros(0))
        assert (
            s.mean,
            s.std,
            s.minimum,
            s.p25,
            s.median,
            s.p75,
            s.maximum,
        ) == (0.0,) * 7
        assert s.iqr == 0.0
        # and the table row renders without dividing by zero
        assert s.as_row()["n"] == 0

    def test_single_element(self):
        s = summarize(np.asarray([7.0]))
        assert s.count == 1
        # every order statistic collapses onto the one value
        assert (
            s.mean,
            s.minimum,
            s.p25,
            s.median,
            s.p75,
            s.maximum,
        ) == (7.0,) * 6
        assert s.std == 0.0
        assert s.iqr == 0.0
        assert s.cv == 0.0

    def test_cv(self):
        s = summarize(np.asarray([10.0, 10.0]))
        assert s.cv == 0.0

    def test_as_row(self):
        row = summarize(np.asarray([1.0, 2.0])).as_row()
        assert row["n"] == 2
        assert "median" in row

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_ordering_invariants(self, xs):
        s = summarize(np.asarray(xs))
        assert s.minimum <= s.p25 <= s.median <= s.p75 <= s.maximum
        # the mean can land 1 ULP outside [min, max] through accumulation
        slack = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum - slack <= s.mean <= s.maximum + slack


class TestDensityHistogram:
    def test_density_normalised(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=10_000)
        edges, density = density_histogram(x, bins=20)
        widths = np.diff(edges)
        assert (density * widths).sum() == pytest.approx(1.0)

    def test_log_bins_positive_only(self):
        x = np.asarray([0.0, 1.0, 10.0, 100.0, 1000.0])
        edges, density = density_histogram(x, bins=8, log=True)
        assert edges[0] == pytest.approx(1.0)
        assert np.all(np.diff(edges) > 0)

    def test_log_constant_sample(self):
        edges, density = density_histogram(np.asarray([5.0, 5.0]), bins=4, log=True)
        assert edges.size == 5

    def test_empty(self):
        edges, density = density_histogram(np.zeros(0), bins=4)
        assert np.all(density == 0)

    def test_all_zero_log(self):
        edges, density = density_histogram(np.zeros(5), bins=4, log=True)
        assert np.all(density == 0)


class TestIqrFraction:
    def test_all_near(self):
        x = np.asarray([95.0, 100.0, 105.0])
        assert iqr_fraction_near(x, 100.0, tolerance=0.1) == 1.0

    def test_none_near(self):
        x = np.asarray([1.0, 2.0])
        assert iqr_fraction_near(x, 100.0, tolerance=0.1) == 0.0

    def test_partial(self):
        x = np.asarray([100.0, 500.0])
        assert iqr_fraction_near(x, 100.0, tolerance=0.5) == 0.5

    def test_degenerate_inputs(self):
        assert iqr_fraction_near(np.zeros(0), 10.0) == 0.0
        assert iqr_fraction_near(np.asarray([1.0]), 0.0) == 0.0
