"""Tests for the Table-1 dataset stand-ins."""

import numpy as np
import pytest

from repro.graph.datasets import (
    PAPER_TABLE1,
    bench_scale,
    cal_like,
    summarize,
    wiki_like,
)
from repro.graph.properties import estimate_diameter


class TestCalLike:
    def test_size_tracks_scale(self):
        small = cal_like(0.002)
        big = cal_like(0.008)
        assert 3 < big.num_nodes / small.num_nodes < 5

    def test_road_traits(self):
        g = cal_like(0.004)
        # low degree, like the real Cal
        assert g.max_degree <= 8
        assert g.average_degree < 5
        # high diameter relative to a scale-free graph of this size
        assert estimate_diameter(g, samples=2) > 50

    def test_deterministic(self):
        a, b = cal_like(0.002), cal_like(0.002)
        assert np.array_equal(a.indices, b.indices)

    def test_scale_one_approximates_paper(self):
        # don't build it (too big for a unit test); check the arithmetic
        import math

        target = PAPER_TABLE1["Cal"]["nodes"]
        cols = max(4, int(math.sqrt(target / 2.0)))
        rows = max(4, target // cols)
        assert abs(rows * cols - target) / target < 0.01

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            cal_like(0.0)


class TestWikiLike:
    def test_scale_free_traits(self):
        g = wiki_like(0.004)
        degrees = np.diff(g.indptr)
        assert degrees.max() > 10 * degrees.mean()  # heavy tail
        assert estimate_diameter(g, samples=2) < 20  # small world

    def test_weights_match_paper_scheme(self):
        g = wiki_like(0.004)
        assert g.weights.min() >= 1
        assert g.weights.max() <= 99

    def test_edge_factor_near_paper(self):
        g = wiki_like(0.01)
        # paper: ~12 edges per node; dedupe trims a little
        assert 6 <= g.average_degree <= 12

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            wiki_like(-1)


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_scale() == 0.02
        assert bench_scale(0.1) == 0.1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_env_out_of_range(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "9.0")
        with pytest.raises(ValueError):
            bench_scale()


class TestSummarize:
    def test_summary(self):
        g = cal_like(0.002)
        s = summarize(g, 0.002)
        assert s.num_nodes == g.num_nodes
        assert s.scale == 0.002
        assert s.max_degree == g.max_degree
