"""Unit tests for structural graph properties."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, path_graph, star_graph
from repro.graph.properties import (
    bfs_levels,
    degree_statistics,
    estimate_diameter,
    graph_stats,
    is_connected_from,
    reachable_count,
    weakly_connected_components,
)


class TestBFS:
    def test_path_levels(self):
        g = path_graph(5)
        lv = bfs_levels(g, 0)
        assert list(lv) == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        g = path_graph(5)
        lv = bfs_levels(g, 2)
        assert list(lv) == [-1, -1, 0, 1, 2]

    def test_star(self):
        g = star_graph(6)
        lv = bfs_levels(g, 0)
        assert lv[0] == 0
        assert np.all(lv[1:] == 1)

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_levels(path_graph(3), 5)

    def test_cycle_ignores_weights(self, triangle):
        # triangle has a direct 0->2 edge (weight 10); BFS counts hops,
        # not weights, so 2 sits at level 1 despite the heavy edge
        lv = bfs_levels(triangle, 0)
        assert list(lv) == [0, 1, 1]


class TestReachability:
    def test_reachable_count(self, disconnected):
        assert reachable_count(disconnected, 0) == 2
        assert reachable_count(disconnected, 4) == 1

    def test_is_connected_from(self, small_star):
        assert is_connected_from(small_star, 0)
        assert not is_connected_from(small_star, 1)


class TestDiameter:
    def test_path_diameter(self):
        g = path_graph(20)
        # directed path: from vertex 0 the eccentricity is 19
        assert estimate_diameter(g, samples=20, seed=0) == 19

    def test_empty(self):
        assert estimate_diameter(CSRGraph.empty(0)) == 0

    def test_grid_diameter_scales(self):
        small = grid_road_network(6, 6, seed=0, drop_fraction=0.0)
        large = grid_road_network(18, 18, seed=0, drop_fraction=0.0)
        assert estimate_diameter(large, samples=6) > estimate_diameter(
            small, samples=6
        )


class TestComponents:
    def test_disconnected(self, disconnected):
        labels = weakly_connected_components(disconnected)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_connected_grid(self, small_grid):
        labels = weakly_connected_components(small_grid)
        # the 8x8 road grid with default drop stays (almost surely) connected
        assert len(np.unique(labels)) <= 3

    def test_direction_ignored(self):
        g = path_graph(4)  # weakly connected although directed
        labels = weakly_connected_components(g)
        assert len(np.unique(labels)) == 1

    def test_empty(self):
        assert weakly_connected_components(CSRGraph.empty(0)).size == 0

    def test_labels_dense(self, disconnected):
        labels = weakly_connected_components(disconnected)
        assert set(np.unique(labels)) == {0, 1, 2}


class TestStats:
    def test_degree_statistics(self, small_star):
        d = degree_statistics(small_star)
        assert d["max"] == 9
        assert d["zeros"] == 9

    def test_degree_statistics_empty(self):
        d = degree_statistics(CSRGraph.empty(0))
        assert d["max"] == 0

    def test_graph_stats_row(self, small_grid):
        s = graph_stats(small_grid, diameter_samples=2)
        assert s.num_nodes == 64
        assert s.max_degree <= 8
        row = s.as_row()
        assert row["Nodes"] == 64
        assert "Max degree" in row
