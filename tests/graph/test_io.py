"""Round-trip and format tests for graph I/O."""

import gzip

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, rmat
from repro.graph.io import (
    load_graph,
    read_dimacs,
    read_edge_list,
    read_matrix_market,
    write_dimacs,
    write_edge_list,
    write_matrix_market,
)


def _assert_same_graph(a: CSRGraph, b: CSRGraph) -> None:
    assert a.num_nodes == b.num_nodes
    ea, eb = sorted(a.edges()), sorted(b.edges())
    assert len(ea) == len(eb)
    for (ua, va, wa), (ub, vb, wb) in zip(ea, eb):
        assert (ua, va) == (ub, vb)
        assert wa == pytest.approx(wb, rel=1e-12)


class TestDimacs:
    def test_roundtrip(self, tmp_path, small_grid):
        p = tmp_path / "g.gr"
        write_dimacs(small_grid, p, comment="test graph")
        g2 = read_dimacs(p)
        _assert_same_graph(small_grid, g2)

    def test_roundtrip_integer_weights(self, tmp_path, small_rmat):
        p = tmp_path / "g.gr"
        write_dimacs(small_rmat, p)
        g2 = read_dimacs(p)
        _assert_same_graph(small_rmat, g2)

    def test_gzip(self, tmp_path, small_rmat):
        p = tmp_path / "g.gr.gz"
        write_dimacs(small_rmat, p)
        with gzip.open(p, "rt") as fh:
            assert fh.readline().startswith(("c", "p"))
        _assert_same_graph(small_rmat, read_dimacs(p))

    def test_reads_hand_written(self, tmp_path):
        p = tmp_path / "hand.gr"
        p.write_text(
            "c demo\n"
            "p sp 3 2\n"
            "a 1 2 10\n"
            "a 2 3 20\n"
        )
        g = read_dimacs(p)
        assert g.num_nodes == 3
        assert sorted(g.edges()) == [(0, 1, 10.0), (1, 2, 20.0)]

    def test_missing_problem_line(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_text("a 1 2 10\n")
        with pytest.raises(ValueError):
            read_dimacs(p)

    def test_arc_count_mismatch(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_text("p sp 3 5\na 1 2 10\n")
        with pytest.raises(ValueError, match="declares 5 arcs"):
            read_dimacs(p)

    def test_unknown_line_rejected(self, tmp_path):
        p = tmp_path / "bad.gr"
        p.write_text("p sp 2 1\nz nonsense\n")
        with pytest.raises(ValueError, match="unrecognised"):
            read_dimacs(p)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, small_rmat):
        p = tmp_path / "g.mtx"
        write_matrix_market(small_rmat, p)
        g2 = read_matrix_market(p)
        _assert_same_graph(small_rmat, g2)

    def test_pattern_matrix_unit_weights(self, tmp_path):
        p = tmp_path / "p.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 2\n"
            "1 2\n"
            "3 1\n"
        )
        g = read_matrix_market(p)
        assert sorted(g.edges()) == [(0, 1, 1.0), (2, 0, 1.0)]

    def test_symmetric_expansion(self, tmp_path):
        p = tmp_path / "s.mtx"
        p.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "% comment line\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 7.0\n"
        )
        g = read_matrix_market(p)
        # off-diagonal mirrored, diagonal kept once
        assert sorted(g.edges()) == [(0, 1, 5.0), (1, 0, 5.0), (2, 2, 7.0)]

    def test_rejects_nonsquare(self, tmp_path):
        p = tmp_path / "ns.mtx"
        p.write_text("%%MatrixMarket matrix coordinate real general\n2 3 0\n")
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(p)

    def test_rejects_wrong_banner(self, tmp_path):
        p = tmp_path / "b.mtx"
        p.write_text("not a matrix\n")
        with pytest.raises(ValueError, match="banner"):
            read_matrix_market(p)

    def test_rejects_complex_field(self, tmp_path):
        p = tmp_path / "c.mtx"
        p.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
        with pytest.raises(ValueError, match="field"):
            read_matrix_market(p)


class TestEdgeList:
    def test_roundtrip(self, tmp_path, small_grid):
        p = tmp_path / "g.tsv"
        write_edge_list(small_grid, p)
        g2 = read_edge_list(p, num_nodes=small_grid.num_nodes)
        _assert_same_graph(small_grid, g2)

    def test_two_column_defaults_to_unit_weight(self, tmp_path):
        p = tmp_path / "g.tsv"
        p.write_text("# comment\n0 1\n1 2\n")
        g = read_edge_list(p)
        assert sorted(g.edges()) == [(0, 1, 1.0), (1, 2, 1.0)]

    def test_infers_node_count(self, tmp_path):
        p = tmp_path / "g.tsv"
        p.write_text("0\t5\t2.0\n")
        g = read_edge_list(p)
        assert g.num_nodes == 6

    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.tsv"
        p.write_text("")
        g = read_edge_list(p)
        assert g.num_nodes == 0

    def test_rejects_bad_line(self, tmp_path):
        p = tmp_path / "bad.tsv"
        p.write_text("0 1 2 3 4\n")
        with pytest.raises(ValueError, match="bad edge-list line"):
            read_edge_list(p)


class TestLoadGraph:
    def test_dispatch_by_extension(self, tmp_path, small_rmat):
        gr = tmp_path / "a.gr"
        mtx = tmp_path / "a.mtx"
        tsv = tmp_path / "a.tsv"
        write_dimacs(small_rmat, gr)
        write_matrix_market(small_rmat, mtx)
        write_edge_list(small_rmat, tsv)
        for p in (gr, mtx, tsv):
            _assert_same_graph(small_rmat, load_graph(p))

    def test_gz_suffix_stripped(self, tmp_path, small_rmat):
        p = tmp_path / "a.gr.gz"
        write_dimacs(small_rmat, p)
        _assert_same_graph(small_rmat, load_graph(p))

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError, match="cannot infer"):
            load_graph(tmp_path / "a.xyz")
