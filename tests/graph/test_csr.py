"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, [0, 0, 1], [1, 2, 2], [1.0, 2.0, 3.0])
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []

    def test_from_edges_unsorted_sources(self):
        g = CSRGraph.from_edges(4, [3, 0, 2, 0], [0, 1, 1, 3], [1, 2, 3, 4])
        assert g.out_degree(0) == 2
        assert g.out_degree(3) == 1
        # weights follow their edges through the sort
        assert g.neighbor_weights(3)[0] == 1.0

    def test_from_edges_preserves_parallel_edges_by_default(self):
        g = CSRGraph.from_edges(2, [0, 0], [1, 1], [5.0, 3.0])
        assert g.num_edges == 2

    def test_dedupe_keeps_min_weight(self):
        g = CSRGraph.from_edges(2, [0, 0, 0], [1, 1, 1], [5.0, 3.0, 7.0], dedupe=True)
        assert g.num_edges == 1
        assert g.weights[0] == 3.0

    def test_dedupe_distinct_edges_survive(self):
        g = CSRGraph.from_edges(
            3, [0, 0, 1, 1], [1, 2, 0, 2], [1, 2, 3, 4], dedupe=True
        )
        assert g.num_edges == 4

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.max_degree == 0
        assert g.average_degree == 0.0

    def test_zero_node_graph(self):
        g = CSRGraph.empty(0)
        assert g.num_nodes == 0
        assert g.average_degree == 0.0

    def test_single_vertex_self_loop(self):
        g = CSRGraph.from_edges(1, [0], [0], [2.5])
        assert g.num_edges == 1
        assert list(g.neighbors(0)) == [0]

    def test_dtype_normalisation(self):
        g = CSRGraph.from_edges(
            2,
            np.asarray([0], dtype=np.uint8),
            np.asarray([1], dtype=np.int16),
            np.asarray([1], dtype=np.float32),
        )
        assert g.indptr.dtype == np.int64
        assert g.indices.dtype == np.int32
        assert g.weights.dtype == np.float64


class TestValidation:
    def test_rejects_out_of_range_source(self):
        with pytest.raises(ValueError, match="endpoint out of range"):
            CSRGraph.from_edges(2, [2], [0], [1.0])

    def test_rejects_out_of_range_destination(self):
        with pytest.raises(ValueError, match="endpoint out of range"):
            CSRGraph.from_edges(2, [0], [5], [1.0])

    def test_rejects_negative_vertex(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [-1], [0], [1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="identical shapes"):
            CSRGraph.from_edges(2, [0], [1, 0], [1.0])

    def test_rejects_nonfinite_weights(self):
        with pytest.raises(ValueError, match="finite"):
            CSRGraph.from_edges(2, [0], [1], [np.inf])
        with pytest.raises(ValueError, match="finite"):
            CSRGraph.from_edges(2, [0], [1], [np.nan])

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(
                indptr=np.asarray([1, 2]),
                indices=np.asarray([0, 0]),
                weights=np.asarray([1.0, 1.0]),
            )

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(
                indptr=np.asarray([0, 2, 1, 2]),
                indices=np.asarray([0, 1]),
                weights=np.asarray([1.0, 1.0]),
            )

    def test_rejects_indptr_tail_mismatch(self):
        with pytest.raises(ValueError, match="num_edges"):
            CSRGraph(
                indptr=np.asarray([0, 1, 3]),
                indices=np.asarray([0]),
                weights=np.asarray([1.0]),
            )

    def test_rejects_negative_num_nodes(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(-1, [], [], [])


class TestQueries:
    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 2
        assert list(triangle.out_degree()) == [2, 1, 1]
        assert list(triangle.out_degree(np.asarray([1, 2]))) == [1, 1]
        assert triangle.max_degree == 2

    def test_average_degree(self, triangle):
        assert triangle.average_degree == pytest.approx(4 / 3)

    def test_average_weight(self, triangle):
        assert triangle.average_weight == pytest.approx((1 + 2 + 4 + 10) / 4)

    def test_average_weight_empty_graph_is_one(self):
        assert CSRGraph.empty(3).average_weight == 1.0

    def test_edges_iteration(self, diamond):
        edges = sorted(diamond.edges())
        assert edges == [(0, 1, 4.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 2.0)]

    def test_edge_arrays_roundtrip(self, small_grid):
        src, dst, w = small_grid.edge_arrays()
        g2 = CSRGraph.from_edges(small_grid.num_nodes, src, dst, w)
        assert np.array_equal(g2.indptr, small_grid.indptr)
        assert np.array_equal(g2.indices, small_grid.indices)
        assert np.allclose(g2.weights, small_grid.weights)

    def test_has_negative_weights(self):
        g = CSRGraph.from_edges(2, [0], [1], [-1.0])
        assert g.has_negative_weights()
        g2 = CSRGraph.from_edges(2, [0], [1], [1.0])
        assert not g2.has_negative_weights()


class TestTransforms:
    def test_reverse(self, diamond):
        r = diamond.reverse()
        assert r.num_edges == diamond.num_edges
        assert sorted(r.edges()) == sorted(
            (v, u, w) for u, v, w in diamond.edges()
        )

    def test_reverse_twice_is_identity(self, small_rmat):
        rr = small_rmat.reverse().reverse()
        assert sorted(rr.edges()) == sorted(small_rmat.edges())

    def test_to_undirected_symmetric(self, diamond):
        u = diamond.to_undirected()
        edge_set = {(a, b) for a, b, _ in u.edges()}
        assert all((b, a) in edge_set for a, b in edge_set)

    def test_to_undirected_min_weight_wins(self):
        g = CSRGraph.from_edges(2, [0, 1], [1, 0], [5.0, 2.0])
        u = g.to_undirected()
        assert u.num_edges == 2
        assert set(u.weights) == {2.0}

    def test_with_weights(self, triangle):
        w = np.ones(triangle.num_edges)
        g2 = triangle.with_weights(w)
        assert np.array_equal(g2.indices, triangle.indices)
        assert np.all(g2.weights == 1.0)

    def test_with_weights_wrong_size_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.with_weights(np.ones(triangle.num_edges + 1))

    def test_subgraph_mask(self, diamond):
        keep = np.asarray([True, False, True, True])
        sub = diamond.subgraph_mask(keep)
        assert sub.num_nodes == 3
        # surviving edges: 0->2 (now 0->1) and 2->3 (now 1->2)
        assert sorted(sub.edges()) == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_subgraph_mask_size_check(self, diamond):
        with pytest.raises(ValueError, match="mask size"):
            diamond.subgraph_mask(np.asarray([True, False]))


class TestFingerprint:
    def test_stable_across_instances(self, triangle):
        clone = CSRGraph(
            indptr=triangle.indptr.copy(),
            indices=triangle.indices.copy(),
            weights=triangle.weights.copy(),
            name=triangle.name,
        )
        assert triangle.fingerprint() == clone.fingerprint()

    def test_memoised(self, triangle):
        assert triangle.fingerprint() is triangle.fingerprint()

    def test_is_hex_sha256(self, triangle):
        fp = triangle.fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex

    def test_weights_change_fingerprint(self, triangle):
        doubled = triangle.with_weights(triangle.weights * 2.0)
        assert doubled.fingerprint() != triangle.fingerprint()

    def test_topology_changes_fingerprint(self):
        a = CSRGraph.from_edges(3, [0, 1], [1, 2], [1.0, 1.0])
        b = CSRGraph.from_edges(3, [0, 2], [1, 1], [1.0, 1.0])
        assert a.fingerprint() != b.fingerprint()

    def test_name_changes_fingerprint(self, triangle):
        renamed = CSRGraph(
            indptr=triangle.indptr,
            indices=triangle.indices,
            weights=triangle.weights,
            name="other",
        )
        assert renamed.fingerprint() != triangle.fingerprint()

    def test_empty_graph_has_fingerprint(self):
        assert len(CSRGraph.empty(0).fingerprint()) == 64

    def test_exposed_in_trace_meta(self, small_grid):
        from repro.core import AdaptiveParams, adaptive_sssp
        from repro.sssp.nearfar import nearfar_sssp

        _, nf_trace = nearfar_sssp(small_grid, 0)
        assert nf_trace.meta["graph_fingerprint"] == small_grid.fingerprint()
        _, ad_trace, _ = adaptive_sssp(
            small_grid, 0, AdaptiveParams(setpoint=50.0)
        )
        assert ad_trace.meta["graph_fingerprint"] == small_grid.fingerprint()
