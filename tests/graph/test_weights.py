"""Unit tests for weight assignment schemes."""

import numpy as np
import pytest

from repro.graph.generators import path_graph
from repro.graph.weights import (
    assign_weights,
    euclidean_weights,
    exponential_weights,
    uniform_float_weights,
    uniform_int_weights,
    unit_weights,
)


class TestUniformInt:
    def test_range_matches_paper(self, rng):
        w = uniform_int_weights(10_000, rng)  # defaults: [1, 99]
        assert w.min() >= 1
        assert w.max() <= 99
        assert np.allclose(w, np.round(w))

    def test_covers_endpoints(self, rng):
        w = uniform_int_weights(20_000, rng, 1, 5)
        assert set(np.unique(w)) == {1.0, 2.0, 3.0, 4.0, 5.0}

    def test_rejects_nonpositive_low(self, rng):
        with pytest.raises(ValueError, match="positive"):
            uniform_int_weights(5, rng, low=0)

    def test_rejects_inverted_range(self, rng):
        with pytest.raises(ValueError):
            uniform_int_weights(5, rng, low=5, high=2)

    def test_zero_edges(self, rng):
        assert uniform_int_weights(0, rng).size == 0


class TestUniformFloat:
    def test_range(self, rng):
        w = uniform_float_weights(1000, rng, 2.0, 3.0)
        assert w.min() >= 2.0
        assert w.max() < 3.0

    def test_rejects_inverted(self, rng):
        with pytest.raises(ValueError):
            uniform_float_weights(5, rng, 3.0, 2.0)


class TestExponential:
    def test_positive(self, rng):
        w = exponential_weights(1000, rng, scale=2.0)
        assert w.min() > 0

    def test_mean_near_scale(self, rng):
        w = exponential_weights(50_000, rng, scale=3.0)
        assert w.mean() == pytest.approx(3.0, rel=0.1)

    def test_rejects_bad_scale(self, rng):
        with pytest.raises(ValueError):
            exponential_weights(5, rng, scale=0.0)


class TestUnit:
    def test_all_ones(self):
        w = unit_weights(7)
        assert np.all(w == 1.0)


class TestEuclidean:
    def test_distance(self):
        src = np.asarray([[0.0, 0.0], [1.0, 1.0]])
        dst = np.asarray([[3.0, 4.0], [1.0, 1.0]])
        w = euclidean_weights(src, dst)
        assert w[0] == pytest.approx(5.0)
        assert w[1] == pytest.approx(1e-9)  # coincident points get the floor

    def test_noise_requires_rng(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ValueError, match="rng required"):
            euclidean_weights(pts, pts + 1, noise=0.1)

    def test_noise_bounded(self, rng):
        src = np.zeros((1000, 2))
        dst = np.ones((1000, 2))
        w = euclidean_weights(src, dst, rng=rng, noise=0.5)
        base = np.sqrt(2.0)
        assert np.all(w >= base * 0.999)
        assert np.all(w <= base * 1.5 * 1.001)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            euclidean_weights(np.zeros((3, 2)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            euclidean_weights(np.zeros(3), np.zeros(3))


class TestAssignWeights:
    def test_dispatch(self, rng):
        g = path_graph(10)
        for scheme in ("uniform_int", "uniform_float", "exponential", "unit"):
            g2 = assign_weights(g, scheme, rng)
            assert g2.num_edges == g.num_edges
            assert np.array_equal(g2.indices, g.indices)

    def test_unknown_scheme(self, rng):
        with pytest.raises(ValueError, match="unknown weight scheme"):
            assign_weights(path_graph(3), "bogus", rng)

    def test_kwargs_forwarded(self, rng):
        g2 = assign_weights(path_graph(100), "uniform_int", rng, low=7, high=7)
        assert np.all(g2.weights == 7.0)
