"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    grid_road_network,
    path_graph,
    random_weighted_graph,
    rmat,
    star_graph,
)
from repro.graph.properties import estimate_diameter, reachable_count


class TestGridRoadNetwork:
    def test_size(self):
        g = grid_road_network(10, 12, seed=1)
        assert g.num_nodes == 120

    def test_deterministic(self):
        a = grid_road_network(6, 6, seed=42)
        b = grid_road_network(6, 6, seed=42)
        assert np.array_equal(a.indices, b.indices)
        assert np.allclose(a.weights, b.weights)

    def test_seed_changes_graph(self):
        a = grid_road_network(6, 6, seed=1)
        b = grid_road_network(6, 6, seed=2)
        assert not np.allclose(a.weights[: min(a.num_edges, b.num_edges)],
                               b.weights[: min(a.num_edges, b.num_edges)])

    def test_low_degree(self):
        g = grid_road_network(20, 20, seed=0)
        assert g.max_degree <= 8

    def test_roads_are_bidirectional(self):
        g = grid_road_network(5, 5, seed=0)
        edge_set = {(u, v) for u, v, _ in g.edges()}
        assert all((v, u) in edge_set for u, v in edge_set)

    def test_positive_weights(self):
        g = grid_road_network(8, 8, seed=0)
        assert g.weights.min() > 0

    def test_high_diameter(self):
        g = grid_road_network(30, 4, seed=0, drop_fraction=0.0)
        # a 30x4 strip must have diameter at least ~rows
        assert estimate_diameter(g, samples=4) >= 25

    def test_no_drop_keeps_full_lattice(self):
        g = grid_road_network(
            5, 5, seed=0, drop_fraction=0.0, diagonal_fraction=0.0
        )
        # 2 * (rows*(cols-1) + (rows-1)*cols) directed edges
        assert g.num_edges == 2 * (5 * 4 + 4 * 5)

    def test_regional_variation_spreads_weights(self):
        flat = grid_road_network(20, 20, seed=0, regional_variation=1.0)
        varied = grid_road_network(20, 20, seed=0, regional_variation=8.0)
        spread_flat = flat.weights.max() / flat.weights.min()
        spread_varied = varied.weights.max() / varied.weights.min()
        assert spread_varied > 2 * spread_flat

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            grid_road_network(0, 5)
        with pytest.raises(ValueError):
            grid_road_network(5, 5, drop_fraction=1.0)
        with pytest.raises(ValueError):
            grid_road_network(5, 5, regional_variation=0.5)

    def test_single_row(self):
        g = grid_road_network(1, 10, seed=0, drop_fraction=0.0)
        assert g.num_nodes == 10
        assert g.num_edges == 18  # 9 horizontal roads, both ways


class TestRMAT:
    def test_size(self):
        g = rmat(8, edge_factor=8, seed=0)
        assert g.num_nodes == 256
        # dedupe + self-loop removal shrink the edge count somewhat
        assert 0.5 * 8 * 256 < g.num_edges <= 8 * 256

    def test_deterministic(self):
        a = rmat(7, seed=3)
        b = rmat(7, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_heavy_tail(self):
        g = rmat(11, edge_factor=12, seed=1)
        degrees = np.diff(g.indptr)
        # scale-free: max degree far above average
        assert degrees.max() > 10 * degrees.mean()

    def test_weights_in_paper_range(self):
        g = rmat(7, seed=0, weight_low=1, weight_high=99)
        assert g.weights.min() >= 1
        assert g.weights.max() <= 99
        assert np.allclose(g.weights, np.round(g.weights))

    def test_no_self_loops(self):
        g = rmat(8, seed=2)
        src, dst, _ = g.edge_arrays()
        assert np.all(src != dst)

    def test_scale_zero(self):
        g = rmat(0, edge_factor=4, seed=0)
        assert g.num_nodes == 1
        assert g.num_edges == 0  # all edges are self-loops on one vertex

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(4, a=0.9, b=0.2, c=0.2)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            rmat(-1)
        with pytest.raises(ValueError):
            rmat(31)


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        g = barabasi_albert(300, attach=3, seed=0)
        assert g.num_nodes == 300
        assert reachable_count(g, 0) == 300  # symmetrised, single component

    def test_heavy_tail(self):
        g = barabasi_albert(2000, attach=4, seed=1)
        degrees = np.diff(g.indptr)
        assert degrees.max() > 5 * degrees.mean()

    def test_symmetric(self):
        g = barabasi_albert(50, attach=2, seed=2)
        edge_set = {(u, v) for u, v, _ in g.edges()}
        assert all((v, u) in edge_set for u, v in edge_set)

    def test_tiny(self):
        g = barabasi_albert(1, seed=0)
        assert g.num_nodes == 1
        g2 = barabasi_albert(2, attach=5, seed=0)
        assert g2.num_nodes == 2
        assert g2.num_edges == 2  # the 0-1 pair, both directions


class TestErdosRenyi:
    def test_edge_count_close_to_target(self):
        g = erdos_renyi(500, 6.0, seed=0)
        # self-loop removal and deduping lose a few percent
        assert 0.9 * 3000 <= g.num_edges <= 3000

    def test_zero_degree(self):
        g = erdos_renyi(10, 0.0, seed=0)
        assert g.num_edges == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 1.0)
        with pytest.raises(ValueError):
            erdos_renyi(10, -1.0)


class TestDeterministicShapes:
    def test_path(self):
        g = path_graph(5, weight=2.0)
        assert g.num_edges == 4
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(4)) == []
        assert np.all(g.weights == 2.0)

    def test_path_single(self):
        assert path_graph(1).num_edges == 0

    def test_star(self):
        g = star_graph(6)
        assert g.out_degree(0) == 5
        assert all(g.out_degree(i) == 0 for i in range(1, 6))

    def test_complete(self):
        g = complete_graph(5, seed=0)
        assert g.num_edges == 20
        assert g.max_degree == 4

    def test_random_weighted_graph_integer_weights(self):
        g = random_weighted_graph(20, 60, seed=0, max_weight=5, integer=True)
        assert np.allclose(g.weights, np.round(g.weights))
        assert g.weights.min() >= 1

    def test_random_weighted_graph_rejects_bad(self):
        with pytest.raises(ValueError):
            random_weighted_graph(0, 5)
        with pytest.raises(ValueError):
            random_weighted_graph(5, -1)


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        from repro.graph.generators import watts_strogatz

        g = watts_strogatz(20, 4, 0.0, seed=0)
        degrees = np.diff(g.indptr)
        assert np.all(degrees == 4)  # regular
        assert estimate_diameter(g, samples=6) >= 4  # ring-like

    def test_rewiring_shrinks_diameter(self):
        from repro.graph.generators import watts_strogatz

        regular = watts_strogatz(400, 4, 0.0, seed=1)
        small_world = watts_strogatz(400, 4, 0.3, seed=1)
        assert estimate_diameter(small_world, samples=6) < estimate_diameter(
            regular, samples=6
        )

    def test_symmetric(self):
        from repro.graph.generators import watts_strogatz

        g = watts_strogatz(30, 4, 0.2, seed=2)
        edges = {(u, v) for u, v, _ in g.edges()}
        assert all((v, u) in edges for u, v in edges)

    def test_deterministic(self):
        from repro.graph.generators import watts_strogatz

        a = watts_strogatz(50, 4, 0.2, seed=3)
        b = watts_strogatz(50, 4, 0.2, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_rejects_bad_params(self):
        from repro.graph.generators import watts_strogatz

        with pytest.raises(ValueError):
            watts_strogatz(2, 2)
        with pytest.raises(ValueError):
            watts_strogatz(10, 3)  # odd neighbours
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, rewire=1.5)

    def test_sssp_correct_on_small_world(self):
        from repro.graph.generators import watts_strogatz
        from repro.sssp.dijkstra import dijkstra
        from repro.sssp.nearfar import nearfar_sssp
        from repro.sssp.result import assert_distances_close

        g = watts_strogatz(100, 6, 0.2, seed=4)
        result, _ = nearfar_sssp(g, 0)
        assert_distances_close(dijkstra(g, 0), result)
