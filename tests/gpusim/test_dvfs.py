"""Unit tests for DVFS settings and governors."""

import pytest

from repro.gpusim.device import JETSON_TK1, JETSON_TX1
from repro.gpusim.dvfs import (
    AutoGovernor,
    FixedDVFS,
    FrequencySetting,
    default_governor,
)


class TestFrequencySetting:
    def test_label_matches_paper_notation(self):
        assert FrequencySetting(852, 924).label == "852/924"


class TestFixedDVFS:
    def test_pins_clocks(self):
        policy = FixedDVFS(JETSON_TK1, 612, 600)
        for _ in range(5):
            s = policy.select(JETSON_TK1)
            assert (s.core_mhz, s.mem_mhz) == (612, 600)
            policy.observe(1.0, 0.01)

    def test_max_performance(self):
        s = FixedDVFS.max_performance(JETSON_TK1).select(JETSON_TK1)
        assert (s.core_mhz, s.mem_mhz) == (852, 924)

    def test_min_power(self):
        s = FixedDVFS.min_power(JETSON_TK1).select(JETSON_TK1)
        assert (s.core_mhz, s.mem_mhz) == (72, 204)

    def test_rejects_unsupported_frequency(self):
        with pytest.raises(ValueError):
            FixedDVFS(JETSON_TK1, 500, 924)

    def test_label(self):
        assert FixedDVFS(JETSON_TK1, 852, 924).label == "852/924"


class TestAutoGovernor:
    def test_starts_mid_table(self):
        gov = AutoGovernor(start_fraction=0.5)
        s = gov.select(JETSON_TK1)
        table = JETSON_TK1.core_freqs_mhz
        assert s.core_mhz == table[int(round(0.5 * (len(table) - 1)))]

    def test_steps_up_under_load(self):
        gov = AutoGovernor(period_s=0.001)
        first = gov.select(JETSON_TK1)
        for _ in range(100):
            gov.observe(1.0, 0.001)  # saturated for >= one period
            s = gov.select(JETSON_TK1)
        assert s.core_mhz == JETSON_TK1.max_core_mhz
        assert s.core_mhz > first.core_mhz

    def test_steps_down_when_idle(self):
        gov = AutoGovernor(period_s=0.001)
        gov.select(JETSON_TK1)
        for _ in range(100):
            gov.observe(0.0, 0.001)
            s = gov.select(JETSON_TK1)
        assert s.core_mhz == JETSON_TK1.core_freqs_mhz[0]

    def test_sampling_period_lags_bursts(self):
        """A burst shorter than the period cannot move the clock."""
        gov = AutoGovernor(period_s=0.010)
        first = gov.select(JETSON_TK1)
        gov.observe(1.0, 0.001)  # 1 ms burst into a 10 ms window
        assert gov.select(JETSON_TK1).core_mhz == first.core_mhz

    def test_mixed_load_holds_frequency(self):
        gov = AutoGovernor(period_s=0.001, up_threshold=0.7, down_threshold=0.25)
        first = gov.select(JETSON_TK1)
        for _ in range(50):
            gov.observe(0.5, 0.001)  # mid utilisation: inside the dead band
            s = gov.select(JETSON_TK1)
        assert s.core_mhz == first.core_mhz

    def test_memory_clock_follows(self):
        gov = AutoGovernor(period_s=0.001)
        for _ in range(100):
            gov.observe(1.0, 0.001)
            s = gov.select(JETSON_TK1)
        assert s.mem_mhz == JETSON_TK1.max_mem_mhz

    def test_reset(self):
        gov = AutoGovernor(period_s=0.001)
        for _ in range(100):
            gov.observe(1.0, 0.001)
            gov.select(JETSON_TK1)
        gov.reset()
        s = gov.select(JETSON_TK1)
        table = JETSON_TK1.core_freqs_mhz
        assert s.core_mhz == table[int(round(0.5 * (len(table) - 1)))]

    @pytest.mark.parametrize(
        "kw",
        [
            dict(up_threshold=0.2, down_threshold=0.5),
            dict(responsiveness=0),
            dict(start_fraction=2.0),
            dict(period_s=0.0),
        ],
    )
    def test_rejects_bad_params(self, kw):
        with pytest.raises(ValueError):
            AutoGovernor(**kw)

    def test_default_governor_device_specific(self):
        tk1 = default_governor(JETSON_TK1)
        tx1 = default_governor(JETSON_TX1)
        assert tx1.period_s < tk1.period_s  # TX1 governor is snappier
        assert tx1.responsiveness > tk1.responsiveness
