"""Unit tests for efficiency metrics."""

import pytest

from repro.gpusim.device import JETSON_TK1
from repro.gpusim.dvfs import FixedDVFS
from repro.gpusim.executor import simulate_run
from repro.gpusim.metrics import (
    energy_delay_product,
    energy_delay_squared,
    pareto_front,
    relative_point,
)
from repro.instrument.trace import IterationRecord, RunTrace


def _run(parallelism=5000, n=20, core=852, mem=924):
    trace = RunTrace(algorithm="nearfar", graph_name="g", source=0)
    for k in range(n):
        trace.append(
            IterationRecord(
                k=k, x1=parallelism // 8, x2=parallelism, x3=parallelism // 2,
                x4=parallelism // 3, delta=1.0, split=1.0, far_size=0,
            )
        )
    return simulate_run(trace, JETSON_TK1, FixedDVFS(JETSON_TK1, core, mem))


class TestEDP:
    def test_edp_positive_and_consistent(self):
        run = _run()
        assert energy_delay_product(run) == pytest.approx(
            run.total_energy_j * run.total_seconds
        )
        assert energy_delay_squared(run) == pytest.approx(
            run.total_energy_j * run.total_seconds**2
        )

    def test_slower_run_higher_edp(self):
        fast = _run(core=852)
        slow = _run(core=72, mem=204)
        # same work, much longer time dominates the smaller power
        assert energy_delay_product(slow) > energy_delay_product(fast)

    def test_ed2p_penalises_latency_harder(self):
        fast, slow = _run(core=852), _run(core=252, mem=396)
        edp_ratio = energy_delay_product(slow) / energy_delay_product(fast)
        ed2p_ratio = energy_delay_squared(slow) / energy_delay_squared(fast)
        assert ed2p_ratio > edp_ratio


class TestRelativePoint:
    def test_self_reference_is_unity(self):
        run = _run()
        p = relative_point(run, run, "self")
        assert p.speedup == 1.0
        assert p.relative_power == 1.0
        assert p.relative_energy == 1.0
        assert not p.energy_win

    def test_low_frequency_point(self):
        ref = _run(core=852, mem=924)
        low = _run(core=252, mem=396)
        p = relative_point(low, ref, "252/396")
        assert p.speedup < 1.0
        assert p.relative_power < 1.0

    def test_rejects_degenerate_reference(self):
        run = _run()
        empty = simulate_run(
            RunTrace(algorithm="x", graph_name="g", source=0), JETSON_TK1
        )
        with pytest.raises(ValueError):
            relative_point(run, empty)


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [0]

    def test_dominated_point_excluded(self):
        assert pareto_front([(1.0, 1.0), (2.0, 2.0)]) == [0]

    def test_tradeoff_points_all_kept(self):
        pts = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert pareto_front(pts) == [0, 1, 2]

    def test_mixed(self):
        pts = [(1.0, 3.0), (2.0, 4.0), (3.0, 1.0), (2.5, 2.5)]
        # (2, 4) is dominated by (1, 3); the rest trade off
        assert pareto_front(pts) == [0, 3, 2]

    def test_duplicates_kept(self):
        pts = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert pareto_front(pts) == [0, 1]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            pareto_front([(1.0,), (1.0, 2.0)])

    def test_three_dimensional(self):
        pts = [(1, 1, 1), (2, 2, 2), (0.5, 3, 3)]
        front = pareto_front(pts)
        assert 0 in front and 2 in front and 1 not in front

    def test_sorted_by_first_coordinate(self):
        pts = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0)]
        front = pareto_front(pts)
        assert [pts[i][0] for i in front] == sorted(pts[i][0] for i in front)
