"""Unit tests for the CMOS power model."""

import pytest

from repro.gpusim.device import JETSON_TK1
from repro.gpusim.power import PowerModel


@pytest.fixture
def pm() -> PowerModel:
    return PowerModel(JETSON_TK1)


class TestEnvelope:
    def test_idle_is_static(self, pm):
        assert pm.total(0.0, 0.0, 852, 924) == pytest.approx(
            JETSON_TK1.static_power_w
        )

    def test_peak_envelope(self, pm):
        assert pm.total(1.0, 1.0, 852, 924) == pytest.approx(pm.peak_power)

    def test_peak_exceeds_idle(self, pm):
        assert pm.peak_power > pm.idle_power


class TestMonotonicity:
    def test_power_rises_with_utilization(self, pm):
        powers = [pm.total(u, 0.5, 852, 924) for u in (0.0, 0.25, 0.5, 1.0)]
        assert powers == sorted(powers)
        assert powers[-1] > powers[0]

    def test_power_rises_with_core_frequency(self, pm):
        powers = [pm.total(1.0, 0.5, f, 924) for f in JETSON_TK1.core_freqs_mhz]
        assert powers == sorted(powers)

    def test_power_rises_with_mem_frequency(self, pm):
        powers = [pm.total(0.5, 1.0, 852, f) for f in JETSON_TK1.mem_freqs_mhz]
        assert powers == sorted(powers)

    def test_voltage_squared_superlinear(self, pm):
        """Halving frequency more than halves dynamic core power (V drops too)."""
        full = pm.core_dynamic(1.0, 852)
        half = pm.core_dynamic(1.0, 426)
        assert half < 0.5 * full


class TestClamping:
    def test_utilization_clamped(self, pm):
        assert pm.total(2.0, 0.0, 852, 924) == pm.total(1.0, 0.0, 852, 924)
        assert pm.total(-1.0, 0.0, 852, 924) == pm.total(0.0, 0.0, 852, 924)

    def test_mem_utilization_clamped(self, pm):
        assert pm.mem_dynamic(5.0, 924) == pm.mem_dynamic(1.0, 924)
