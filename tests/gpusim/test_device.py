"""Unit tests for device specs and presets."""

import pytest

from repro.gpusim.device import JETSON_TK1, JETSON_TX1, DeviceSpec, get_device


class TestPresets:
    def test_tk1_matches_paper(self):
        assert JETSON_TK1.num_cores == 192  # Kepler GK20A
        assert JETSON_TK1.max_core_mhz == 852  # the paper's "852/924" setting
        assert JETSON_TK1.max_mem_mhz == 924

    def test_tx1_matches_paper(self):
        assert JETSON_TX1.num_cores == 256  # Maxwell GM20B
        assert JETSON_TX1.max_mem_mhz == 1600

    def test_bandwidth_tk1(self):
        # 64-bit LPDDR3 at 924 MHz: ~14.8 GB/s
        assert JETSON_TK1.mem_bandwidth(924) == pytest.approx(14.78e9, rel=0.01)

    def test_bandwidth_tx1(self):
        assert JETSON_TX1.mem_bandwidth(1600) == pytest.approx(25.6e9, rel=0.01)

    def test_lookup_aliases(self):
        assert get_device("tk1") is JETSON_TK1
        assert get_device("TX1") is JETSON_TX1
        assert get_device("jetson-tk1") is JETSON_TK1

    def test_unknown_device(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("rtx4090")


class TestVoltageCurve:
    def test_endpoints(self):
        d = JETSON_TK1
        assert d.voltage(d.core_freqs_mhz[0]) == pytest.approx(d.v_min)
        assert d.voltage(d.core_freqs_mhz[-1]) == pytest.approx(d.v_max)

    def test_monotone(self):
        d = JETSON_TK1
        volts = [d.voltage(f) for f in d.core_freqs_mhz]
        assert volts == sorted(volts)

    def test_clamped_outside_range(self):
        d = JETSON_TK1
        assert d.voltage(1) == d.v_min
        assert d.voltage(10_000) == d.v_max


class TestValidation:
    def test_validate_setting(self):
        JETSON_TK1.validate_setting(852, 924)
        with pytest.raises(ValueError, match="core frequency"):
            JETSON_TK1.validate_setting(853, 924)
        with pytest.raises(ValueError, match="memory frequency"):
            JETSON_TK1.validate_setting(852, 925)

    def _spec(self, **overrides):
        base = dict(
            name="test",
            num_cores=4,
            core_freqs_mhz=(100, 200),
            mem_freqs_mhz=(100,),
            mem_bytes_per_mhz=1e6,
            v_min=0.8,
            v_max=1.2,
            static_power_w=1.0,
            max_core_dynamic_w=2.0,
            max_mem_dynamic_w=1.0,
            saturation_occupancy=4.0,
            kernel_launch_overhead_s=1e-6,
            controller_overhead_s=1e-7,
        )
        base.update(overrides)
        return DeviceSpec(**base)

    def test_constructs(self):
        d = self._spec()
        assert d.saturation_items == 16

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_cores=0),
            dict(core_freqs_mhz=()),
            dict(core_freqs_mhz=(200, 100)),
            dict(mem_freqs_mhz=(0,)),
            dict(v_min=0.0),
            dict(v_min=1.5, v_max=1.2),
            dict(static_power_w=-1.0),
            dict(saturation_occupancy=0.0),
        ],
    )
    def test_rejects_bad_spec(self, overrides):
        with pytest.raises(ValueError):
            self._spec(**overrides)
