"""Unit tests for the platform executor (trace replay)."""

import numpy as np
import pytest

from repro.gpusim.device import JETSON_TK1, JETSON_TX1
from repro.gpusim.dvfs import AutoGovernor, FixedDVFS
from repro.gpusim.executor import simulate_run
from repro.instrument.trace import IterationRecord, RunTrace


def _trace(parallelisms, algorithm="nearfar") -> RunTrace:
    trace = RunTrace(algorithm=algorithm, graph_name="synthetic", source=0)
    for k, p in enumerate(parallelisms):
        trace.append(
            IterationRecord(
                k=k,
                x1=max(1, p // 8),
                x2=p,
                x3=max(0, p // 2),
                x4=max(0, p // 3),
                delta=1.0,
                split=float(k + 1),
                far_size=100,
            )
        )
    return trace


MAXPERF = FixedDVFS.max_performance(JETSON_TK1)


class TestBasics:
    def test_empty_trace(self):
        run = simulate_run(_trace([]), JETSON_TK1, MAXPERF)
        assert run.total_seconds == 0.0
        assert run.total_energy_j == 0.0
        assert run.average_power_w == 0.0

    def test_iterations_counted(self):
        run = simulate_run(_trace([100, 200, 300]), JETSON_TK1, MAXPERF)
        assert len(run.iterations) == 3
        assert all(len(it.kernels) == 4 for it in run.iterations)

    def test_time_energy_positive(self):
        run = simulate_run(_trace([1000]), JETSON_TK1, MAXPERF)
        assert run.total_seconds > 0
        assert run.total_energy_j > 0
        assert (
            JETSON_TK1.static_power_w
            <= run.average_power_w
            <= JETSON_TK1.static_power_w
            + JETSON_TK1.max_core_dynamic_w
            + JETSON_TK1.max_mem_dynamic_w
        )

    def test_summary_keys(self):
        run = simulate_run(_trace([50]), JETSON_TK1, MAXPERF)
        s = run.summary()
        for key in ("device", "dvfs", "time_ms", "energy_j", "avg_power_w"):
            assert key in s


class TestCostModelShape:
    def test_more_work_takes_longer(self):
        short = simulate_run(_trace([100] * 10), JETSON_TK1, MAXPERF)
        long = simulate_run(_trace([100_000] * 10), JETSON_TK1, MAXPERF)
        assert long.total_seconds > short.total_seconds

    def test_more_iterations_cost_launch_overhead(self):
        few = simulate_run(_trace([10_000]), JETSON_TK1, MAXPERF)
        many = simulate_run(_trace([100] * 100), JETSON_TK1, MAXPERF)
        # same total edges, but 100x launch+fill overhead
        assert many.total_seconds > few.total_seconds

    def test_low_frequency_slower_and_cheaper_power(self):
        fast = simulate_run(_trace([5000] * 20), JETSON_TK1, MAXPERF)
        slow = simulate_run(
            _trace([5000] * 20), JETSON_TK1, FixedDVFS(JETSON_TK1, 252, 396)
        )
        assert slow.total_seconds > fast.total_seconds
        assert slow.average_power_w < fast.average_power_w

    def test_utilization_saturates(self):
        run = simulate_run(_trace([10_000_000]), JETSON_TK1, MAXPERF)
        assert run.iterations[0].utilization == pytest.approx(1.0, abs=0.05)

    def test_small_kernels_low_utilization(self):
        run = simulate_run(_trace([4] * 5), JETSON_TK1, MAXPERF)
        assert run.iterations[0].utilization < 0.2

    def test_high_parallelism_higher_power(self):
        low = simulate_run(_trace([100] * 20), JETSON_TK1, MAXPERF)
        high = simulate_run(_trace([50_000] * 20), JETSON_TK1, MAXPERF)
        assert high.average_power_w > low.average_power_w

    def test_memory_frequency_matters_for_big_kernels(self):
        fast_mem = simulate_run(
            _trace([200_000] * 5), JETSON_TK1, FixedDVFS(JETSON_TK1, 852, 924)
        )
        slow_mem = simulate_run(
            _trace([200_000] * 5), JETSON_TK1, FixedDVFS(JETSON_TK1, 852, 204)
        )
        assert slow_mem.total_seconds > fast_mem.total_seconds


class TestControllerOverhead:
    def test_adaptive_traces_pay_controller(self):
        base = simulate_run(_trace([100] * 10, "nearfar"), JETSON_TK1, MAXPERF)
        tuned = simulate_run(
            _trace([100] * 10, "adaptive-nearfar"), JETSON_TK1, MAXPERF
        )
        assert base.controller_seconds == 0.0
        assert tuned.controller_seconds == pytest.approx(
            10 * JETSON_TK1.controller_overhead_s
        )
        assert 0 < tuned.controller_overhead_fraction < 1

    def test_override_flag(self):
        run = simulate_run(
            _trace([100] * 10, "nearfar"),
            JETSON_TK1,
            MAXPERF,
            include_controller=True,
        )
        assert run.controller_seconds > 0


class TestGovernorIntegration:
    def test_default_policy_is_auto(self):
        run = simulate_run(_trace([100] * 5), JETSON_TK1)
        assert run.policy_label == "auto"

    def test_governor_raises_clock_under_sustained_load(self):
        gov = AutoGovernor(period_s=1e-6)  # decide every iteration
        run = simulate_run(_trace([1_000_000] * 30), JETSON_TK1, gov)
        freqs = [it.setting.core_mhz for it in run.iterations]
        assert freqs[-1] == JETSON_TK1.max_core_mhz

    def test_power_series_shapes(self):
        run = simulate_run(_trace([100, 5000, 100]), JETSON_TK1, MAXPERF)
        times, power = run.power_series()
        assert times.shape == power.shape == (3,)
        assert np.all(np.diff(times) > 0)
        assert power[1] > power[0]

    def test_tx1_faster_than_tk1(self):
        t = _trace([50_000] * 10)
        tk1 = simulate_run(t, JETSON_TK1, FixedDVFS.max_performance(JETSON_TK1))
        tx1 = simulate_run(t, JETSON_TX1, FixedDVFS.max_performance(JETSON_TX1))
        assert tx1.total_seconds < tk1.total_seconds
