"""Unit tests for the kernel cost mapping."""

import pytest

from repro.gpusim.kernels import KernelSpec, STAGE_SPECS, iteration_kernels
from repro.instrument.trace import IterationRecord


def _rec(**kw):
    base = dict(
        k=0, x1=10, x2=100, x3=50, x4=40, delta=1.0, split=1.0, far_size=200
    )
    base.update(kw)
    return IterationRecord(**base)


class TestSpecs:
    def test_four_stages_defined(self):
        assert set(STAGE_SPECS) == {"advance", "filter", "bisect", "farqueue"}

    def test_advance_is_heaviest_per_item(self):
        adv = STAGE_SPECS["advance"]
        for name, spec in STAGE_SPECS.items():
            assert adv.cycles_per_item >= spec.cycles_per_item
            assert adv.bytes_per_item >= spec.bytes_per_item

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            KernelSpec("x", cycles_per_item=0.0, bytes_per_item=1.0)
        with pytest.raises(ValueError):
            KernelSpec("x", cycles_per_item=1.0, bytes_per_item=-1.0)


class TestIterationKernels:
    def test_four_kernels_per_iteration(self):
        kernels = iteration_kernels(_rec())
        assert [spec.name for spec, _ in kernels] == [
            "advance",
            "filter",
            "bisect",
            "farqueue",
        ]

    def test_items_map_to_counters(self):
        kernels = dict((s.name, items) for s, items in iteration_kernels(_rec()))
        assert kernels["advance"] == 100  # X^(2)
        assert kernels["filter"] == 100  # X^(2)
        assert kernels["bisect"] == 50  # X^(3)
        assert kernels["farqueue"] == 40  # X^(4), no drain, no moves

    def test_rebalancer_traffic_counted(self):
        kernels = dict(
            (s.name, items)
            for s, items in iteration_kernels(
                _rec(moved_from_far=7, moved_to_far=3)
            )
        )
        assert kernels["farqueue"] == 40 + 7 + 3

    def test_drain_adds_far_scan(self):
        kernels = dict(
            (s.name, items)
            for s, items in iteration_kernels(
                _rec(drains=2, far_size=200, moved_from_far=5)
            )
        )
        assert kernels["farqueue"] == 40 + 5 + 200 + 5

    def test_empty_iteration_still_launches(self):
        kernels = iteration_kernels(_rec(x1=1, x2=0, x3=0, x4=0))
        assert len(kernels) == 4  # launch overhead is paid regardless
