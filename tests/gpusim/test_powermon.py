"""Unit tests for the PowerMon-style sampler."""

import numpy as np
import pytest

from repro.gpusim.device import JETSON_TK1
from repro.gpusim.dvfs import FixedDVFS
from repro.gpusim.executor import simulate_run
from repro.gpusim.powermon import PowerMonChannel, sample_run
from repro.instrument.trace import IterationRecord, RunTrace


def _long_trace(n=4000, p=5000) -> RunTrace:
    trace = RunTrace(algorithm="nearfar", graph_name="synthetic", source=0)
    for k in range(n):
        trace.append(
            IterationRecord(
                k=k, x1=p // 8, x2=p, x3=p // 2, x4=p // 3,
                delta=1.0, split=1.0, far_size=0,
            )
        )
    return trace


@pytest.fixture
def run():
    return simulate_run(
        _long_trace(), JETSON_TK1, FixedDVFS.max_performance(JETSON_TK1)
    )


class TestSampling:
    def test_sample_rate_respected(self, run):
        pm = sample_run(run, PowerMonChannel(sample_rate_hz=1000.0, noise_w=0.0))
        expected = int(run.total_seconds * 1000.0)
        assert abs(pm.num_samples - expected) <= 1

    def test_average_power_close_to_model(self, run):
        pm = sample_run(run, PowerMonChannel(noise_w=0.0, quantum_w=0.0))
        assert pm.average_power_w == pytest.approx(run.average_power_w, rel=0.02)

    def test_energy_close_to_model(self, run):
        pm = sample_run(run, PowerMonChannel(noise_w=0.0, quantum_w=0.0))
        assert pm.energy_j == pytest.approx(run.total_energy_j, rel=0.02)

    def test_noise_deterministic_per_seed(self, run):
        a = sample_run(run, seed=1)
        b = sample_run(run, seed=1)
        c = sample_run(run, seed=2)
        assert np.array_equal(a.watts, b.watts)
        assert not np.array_equal(a.watts, c.watts)

    def test_quantisation(self, run):
        pm = sample_run(run, PowerMonChannel(noise_w=0.0, quantum_w=0.5))
        assert np.allclose(pm.watts % 0.5, 0.0)

    def test_nonnegative(self, run):
        pm = sample_run(run, PowerMonChannel(noise_w=50.0))  # absurd noise
        assert pm.watts.min() >= 0.0

    def test_current_channel(self, run):
        pm = sample_run(run, PowerMonChannel(rail_volts=12.0, noise_w=0.0))
        assert np.allclose(pm.current_a() * 12.0, pm.watts)

    def test_too_short_run_single_sample(self):
        trace = _long_trace(n=1, p=10)
        run = simulate_run(trace, JETSON_TK1, FixedDVFS.max_performance(JETSON_TK1))
        pm = sample_run(run)
        assert pm.num_samples == 1

    def test_empty_run(self):
        trace = RunTrace(algorithm="nearfar", graph_name="x", source=0)
        run = simulate_run(trace, JETSON_TK1)
        pm = sample_run(run)
        assert pm.num_samples == 0
        assert pm.average_power_w == 0.0
        assert pm.energy_j == 0.0

    def test_peak_at_least_average(self, run):
        pm = sample_run(run)
        assert pm.peak_power_w >= pm.average_power_w


class TestChannelValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(rail_volts=0.0),
            dict(sample_rate_hz=0.0),
            dict(noise_w=-1.0),
            dict(quantum_w=-1.0),
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            PowerMonChannel(**kw)
