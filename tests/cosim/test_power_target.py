"""Tests for the power-target servo (the paper's §6 future work)."""

import numpy as np
import pytest

from repro.cosim import PowerTargetParams, PowerTargetServo, power_target_sssp
from repro.experiments.runner import pick_source
from repro.gpusim.device import JETSON_TK1
from repro.graph.generators import grid_road_network
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import assert_distances_close


def _road():
    return grid_road_network(100, 100, seed=4)


class TestServoUnit:
    def _servo(self, target=6.0, **kw):
        kw.setdefault("initial_setpoint", 500.0)
        return PowerTargetServo(
            PowerTargetParams(target_watts=target, **kw), JETSON_TK1
        )

    def test_raises_setpoint_when_under_budget(self):
        servo = self._servo(target=8.0, adjust_period=1)
        p0 = servo.setpoint
        servo.observe(5.0)  # well under budget
        assert servo.setpoint > p0

    def test_lowers_setpoint_when_over_budget(self):
        servo = self._servo(target=5.0, adjust_period=1)
        p0 = servo.setpoint
        servo.observe(9.0)
        assert servo.setpoint < p0

    def test_holds_at_budget(self):
        servo = self._servo(target=6.0, adjust_period=1)
        p0 = servo.setpoint
        servo.observe(6.0)
        assert servo.setpoint == pytest.approx(p0, rel=1e-6)

    def test_adjust_period_gates_retargeting(self):
        servo = self._servo(target=8.0, adjust_period=3)
        p0 = servo.setpoint
        servo.observe(4.0)
        servo.observe(4.0)
        assert servo.setpoint == p0  # two observations: not yet
        servo.observe(4.0)
        assert servo.setpoint > p0  # third triggers

    def test_ema_smoothing(self):
        servo = self._servo(target=6.0, ema_halflife_iterations=4.0)
        servo.observe(10.0)
        servo.observe(0.0)
        assert 0.0 < servo.measured_watts < 10.0

    def test_clamps(self):
        servo = self._servo(
            target=12.0, adjust_period=1, setpoint_min=10.0, setpoint_max=1000.0
        )
        for _ in range(50):
            servo.observe(4.01)  # forever under budget
        assert servo.setpoint == 1000.0
        servo2 = self._servo(
            target=4.2, adjust_period=1, setpoint_min=10.0, setpoint_max=1000.0
        )
        for _ in range(50):
            servo2.observe(12.0)
        assert servo2.setpoint == 10.0

    def test_rejects_unreachable_target(self):
        with pytest.raises(ValueError, match="static floor"):
            PowerTargetServo(
                PowerTargetParams(target_watts=2.0), JETSON_TK1
            )  # TK1 static floor is 4 W

    def test_rejects_negative_watts(self):
        servo = self._servo()
        with pytest.raises(ValueError):
            servo.observe(-1.0)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(target_watts=0.0),
            dict(target_watts=6.0, initial_setpoint=0.0),
            dict(target_watts=6.0, gain=0.0),
            dict(target_watts=6.0, gain=3.0),
            dict(target_watts=6.0, ema_halflife_iterations=0.0),
            dict(target_watts=6.0, adjust_period=0),
            dict(target_watts=6.0, setpoint_min=0.0),
            dict(target_watts=6.0, setpoint_min=10.0, setpoint_max=5.0),
        ],
    )
    def test_param_validation(self, kw):
        with pytest.raises(ValueError):
            PowerTargetParams(**kw)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def road(self):
        return _road()

    def test_distances_stay_exact(self, road):
        src = pick_source(road)
        res = power_target_sssp(
            road, src, JETSON_TK1, PowerTargetParams(target_watts=5.5)
        )
        assert_distances_close(dijkstra(road, src), res.result)

    def test_power_tracks_target_on_road(self, road):
        src = pick_source(road)
        res = power_target_sssp(
            road, src, JETSON_TK1,
            PowerTargetParams(target_watts=5.5, initial_setpoint=300.0),
        )
        assert res.steady_state_power() == pytest.approx(5.5, rel=0.15)

    def test_higher_budget_more_power_and_speed(self, road):
        src = pick_source(road)
        lo = power_target_sssp(
            road, src, JETSON_TK1, PowerTargetParams(target_watts=4.8)
        )
        hi = power_target_sssp(
            road, src, JETSON_TK1, PowerTargetParams(target_watts=7.0)
        )
        assert hi.platform.average_power_w > lo.platform.average_power_w
        assert hi.platform.total_seconds < lo.platform.total_seconds

    def test_histories_aligned(self, road):
        src = pick_source(road)
        res = power_target_sssp(
            road, src, JETSON_TK1,
            PowerTargetParams(target_watts=5.5),
            max_iterations=50,
        )
        assert res.setpoint_history.size == 50
        assert res.power_history.size == 50
        assert len(res.trace) == 50
        assert len(res.platform.iterations) == 50
        assert res.final_setpoint == res.setpoint_history[-1]

    def test_algorithm_label(self, road):
        src = pick_source(road)
        res = power_target_sssp(
            road, src, JETSON_TK1,
            PowerTargetParams(target_watts=5.5),
            max_iterations=5,
        )
        assert "powertarget" in res.trace.algorithm
        assert res.platform.controller_seconds > 0  # inner controller charged
