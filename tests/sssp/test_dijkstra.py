"""Unit tests for the Dijkstra oracle."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import path_graph, star_graph
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import extract_path, verify_optimality


class TestBasics:
    def test_path(self):
        g = path_graph(5, weight=2.0)
        r = dijkstra(g, 0)
        assert list(r.dist) == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_star(self):
        g = star_graph(4, weight=3.0)
        r = dijkstra(g, 0)
        assert list(r.dist) == [0.0, 3.0, 3.0, 3.0]

    def test_triangle_prefers_cheap_route(self, triangle):
        r = dijkstra(triangle, 0)
        # 0->2 direct is 10; 0->1->2 is 3
        assert r.dist[2] == 3.0

    def test_diamond(self, diamond):
        r = dijkstra(diamond, 0)
        assert r.dist[3] == 3.0  # via 2

    def test_unreachable_is_inf(self, disconnected):
        r = dijkstra(disconnected, 0)
        assert np.isinf(r.dist[2])
        assert np.isinf(r.dist[4])
        assert r.num_reached == 2

    def test_source_distance_zero(self, small_grid):
        r = dijkstra(small_grid, 7)
        assert r.dist[7] == 0.0

    def test_zero_weight_edges(self):
        g = CSRGraph.from_edges(3, [0, 1], [1, 2], [0.0, 0.0])
        r = dijkstra(g, 0)
        assert list(r.dist) == [0.0, 0.0, 0.0]

    def test_self_loop_ignored_in_distances(self):
        g = CSRGraph.from_edges(2, [0, 0], [0, 1], [5.0, 1.0])
        r = dijkstra(g, 0)
        assert r.dist[0] == 0.0
        assert r.dist[1] == 1.0

    def test_parallel_edges_min_wins(self):
        g = CSRGraph.from_edges(2, [0, 0], [1, 1], [5.0, 2.0])
        r = dijkstra(g, 0)
        assert r.dist[1] == 2.0

    def test_single_vertex(self):
        r = dijkstra(CSRGraph.empty(1), 0)
        assert list(r.dist) == [0.0]


class TestValidationErrors:
    def test_source_out_of_range(self, triangle):
        with pytest.raises(ValueError, match="out of range"):
            dijkstra(triangle, 3)
        with pytest.raises(ValueError, match="out of range"):
            dijkstra(triangle, -1)

    def test_negative_weights_rejected(self):
        g = CSRGraph.from_edges(2, [0], [1], [-1.0])
        with pytest.raises(ValueError, match="non-negative"):
            dijkstra(g, 0)


class TestPredecessors:
    def test_path_extraction(self, diamond):
        r = dijkstra(diamond, 0, with_pred=True)
        assert extract_path(r, 3) == [0, 2, 3]

    def test_path_to_source(self, diamond):
        r = dijkstra(diamond, 0, with_pred=True)
        assert extract_path(r, 0) == [0]

    def test_unreachable_path_empty(self, disconnected):
        r = dijkstra(disconnected, 0, with_pred=True)
        assert extract_path(r, 3) == []

    def test_no_pred_raises(self, diamond):
        r = dijkstra(diamond, 0)
        with pytest.raises(ValueError, match="predecessor"):
            extract_path(r, 3)

    def test_path_distances_consistent(self, small_grid):
        r = dijkstra(small_grid, 0, with_pred=True)
        for target in range(0, small_grid.num_nodes, 7):
            if not np.isfinite(r.dist[target]):
                continue
            path = extract_path(r, target)
            total = 0.0
            for u, v in zip(path, path[1:]):
                nbrs = list(small_grid.neighbors(u))
                w = small_grid.neighbor_weights(u)[nbrs.index(v)]
                total += w
            assert total == pytest.approx(r.dist[target])


class TestOptimality:
    def test_verify_optimality_passes(self, small_grid):
        r = dijkstra(small_grid, 0)
        verify_optimality(small_grid, r)

    def test_verify_optimality_catches_wrong_distance(self, small_grid):
        r = dijkstra(small_grid, 0)
        r.dist[5] += 100.0
        with pytest.raises(AssertionError):
            verify_optimality(small_grid, r)

    def test_verify_optimality_catches_too_small(self, small_grid):
        r = dijkstra(small_grid, 0)
        finite = np.flatnonzero(np.isfinite(r.dist) & (r.dist > 0))
        r.dist[finite[0]] *= 0.5
        with pytest.raises(AssertionError):
            verify_optimality(small_grid, r)

    def test_relaxation_count_positive(self, small_grid):
        r = dijkstra(small_grid, 0)
        assert r.relaxations >= small_grid.num_edges // 2


class TestSlicedRelaxation:
    """The degree-adaptive CSR-slice branch (degree >= _SLICE_THRESHOLD)."""

    def _hub_graph(self, leaves=64):
        """A hub whose adjacency takes the vectorised branch."""
        src = [0] * leaves + list(range(1, leaves + 1))
        dst = list(range(1, leaves + 1)) + [leaves + 1] * leaves
        weight = [float(1 + (i % 7)) for i in range(leaves)] + [1.0] * leaves
        return CSRGraph.from_edges(leaves + 2, src, dst, weight)

    def test_hub_matches_bellman_ford(self):
        from repro.sssp.bellman_ford import bellman_ford

        g = self._hub_graph()
        r = dijkstra(g, 0)
        assert np.array_equal(r.dist, bellman_ford(g, 0).dist)
        assert r.relaxations == g.num_edges

    def test_hub_with_pred_consistent(self):
        g = self._hub_graph()
        r = dijkstra(g, 0, with_pred=True)
        # every reached non-source vertex has a pred that explains its dist
        for v in range(1, g.num_nodes):
            u = r.pred[v]
            assert u >= 0
            lo, hi = g.indptr[u], g.indptr[u + 1]
            edges = [
                g.weights[e] for e in range(lo, hi) if g.indices[e] == v
            ]
            assert any(r.dist[u] + w == r.dist[v] for w in edges)

    def test_parallel_edges_inside_one_slice(self):
        """Duplicate targets in a sliced adjacency keep the minimum."""
        leaves = 40
        src = [0] * (leaves + 2)
        dst = list(range(1, leaves + 1)) + [1, 1]  # two extra edges to 1
        weight = [9.0] * leaves + [3.0, 6.0]
        g = CSRGraph.from_edges(leaves + 1, src, dst, weight)
        r = dijkstra(g, 0, with_pred=True)
        assert r.dist[1] == 3.0
        assert r.pred[1] == 0
        assert r.relaxations == leaves + 2

    def test_isolated_source_early_out(self):
        g = CSRGraph.from_edges(3, [0], [1], [1.0])
        r = dijkstra(g, 2)  # vertex 2 has no out-edges
        assert r.dist[2] == 0.0
        assert np.isinf(r.dist[0]) and np.isinf(r.dist[1])
        assert r.relaxations == 0

    def test_star_hub_beyond_threshold(self):
        g = star_graph(100)  # hub degree 99 > threshold
        r = dijkstra(g, 0)
        assert np.all(np.isfinite(r.dist))
        assert r.dist[0] == 0.0
