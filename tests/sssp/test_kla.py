"""Unit tests for the KLA-style SSSP."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import path_graph
from repro.sssp.dijkstra import dijkstra
from repro.sssp.kla import kla_sssp
from repro.sssp.result import assert_distances_close


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3, 7, 100])
    def test_exact_for_any_k_grid(self, small_grid, k):
        result, _ = kla_sssp(small_grid, 0, k)
        assert_distances_close(dijkstra(small_grid, 0), result)

    @pytest.mark.parametrize("k", [1, 4, 16])
    def test_exact_for_any_k_rmat(self, small_rmat, k):
        result, _ = kla_sssp(small_rmat, 0, k)
        assert_distances_close(dijkstra(small_rmat, 0), result)

    def test_random_batch(self, random_graphs):
        for g in random_graphs:
            result, _ = kla_sssp(g, 0, 3)
            assert_distances_close(dijkstra(g, 0), result)

    def test_disconnected(self, disconnected):
        result, _ = kla_sssp(disconnected, 0, 2)
        assert np.isinf(result.dist[2:]).all()


class TestAsynchronyDepth:
    def test_k1_is_level_synchronous(self):
        g = path_graph(20)
        result, _ = kla_sssp(g, 0, 1)
        # one superstep per hop, plus the final empty-frontier probe
        assert result.iterations == 20

    def test_larger_k_fewer_syncs(self, small_grid):
        syncs = [kla_sssp(small_grid, 0, k)[0].iterations for k in (1, 4, 16)]
        assert syncs[0] > syncs[1] > syncs[2]

    def test_levels_independent_of_k(self, small_grid):
        """Total relaxation levels are a property of the graph, not k
        (k only moves the synchronisation points)."""
        levels = {kla_sssp(small_grid, 0, k)[0].extra["levels"] for k in (1, 2, 8)}
        assert len(levels) == 1

    def test_relaxations_independent_of_k(self, small_grid):
        relax = {kla_sssp(small_grid, 0, k)[0].relaxations for k in (1, 2, 8)}
        assert len(relax) == 1

    def test_superstep_count_formula(self):
        g = path_graph(17)
        result, _ = kla_sssp(g, 0, 4)
        # 16 improving levels + 1 empty probe, k per superstep
        assert result.iterations == int(np.ceil(17 / 4))

    def test_no_prioritisation_means_more_work_than_dijkstra(self, small_rmat):
        """KLA relaxes through stale distances on weighted graphs."""
        kla_result, _ = kla_sssp(small_rmat, 0, 4)
        dij = dijkstra(small_rmat, 0)
        assert kla_result.relaxations >= dij.relaxations


class TestTraceAndValidation:
    def test_trace_one_record_per_level(self, small_grid):
        result, trace = kla_sssp(small_grid, 0, 4)
        assert len(trace) == result.extra["levels"]
        assert all(rec.far_size == 0 for rec in trace)

    def test_collect_trace_false(self, small_grid):
        result, trace = kla_sssp(small_grid, 0, 4, collect_trace=False)
        assert len(trace) == 0
        assert result.iterations > 0

    def test_rejects_bad_k(self, small_grid):
        with pytest.raises(ValueError):
            kla_sssp(small_grid, 0, 0)

    def test_rejects_bad_source(self, small_grid):
        with pytest.raises(ValueError):
            kla_sssp(small_grid, -1, 2)

    def test_rejects_negative_weights(self):
        g = CSRGraph.from_edges(2, [0], [1], [-1.0])
        with pytest.raises(ValueError):
            kla_sssp(g, 0, 2)
