"""Unit tests for the shared frontier-stage primitives."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import star_graph
from repro.sssp.frontier import (
    advance,
    bisect,
    drain_far_queue,
    filter_frontier,
    ragged_arange,
)

EMPTY = np.zeros(0, dtype=np.int64)


class TestRaggedArange:
    def test_basic(self):
        assert list(ragged_arange(np.asarray([3, 1, 2]))) == [0, 1, 2, 0, 0, 1]

    def test_zeros_inside(self):
        assert list(ragged_arange(np.asarray([0, 2, 0, 1]))) == [0, 1, 0]

    def test_empty(self):
        assert ragged_arange(np.asarray([], dtype=np.int64)).size == 0

    def test_all_zero(self):
        assert ragged_arange(np.asarray([0, 0])).size == 0


class TestAdvance:
    def test_relaxes_and_reports(self, diamond):
        dist = np.full(4, np.inf)
        dist[0] = 0.0
        out = advance(diamond, np.asarray([0]), dist)
        assert out.x2 == 2  # both out-edges of 0 explored
        assert sorted(out.improved.tolist()) == [1, 2]
        assert dist[1] == 4.0 and dist[2] == 1.0

    def test_no_improvement_no_output(self, diamond):
        dist = np.zeros(4)  # everything already optimal at 0
        out = advance(diamond, np.asarray([0]), dist)
        assert out.x2 == 2
        assert out.improved.size == 0

    def test_empty_frontier(self, diamond):
        dist = np.full(4, np.inf)
        out = advance(diamond, EMPTY, dist)
        assert out.x2 == 0
        assert out.improved.size == 0

    def test_frontier_of_sinks(self):
        g = star_graph(4)
        dist = np.full(4, np.inf)
        dist[1] = 1.0
        out = advance(g, np.asarray([1]), dist)  # leaf: no out-edges
        assert out.x2 == 0

    def test_duplicates_preserved_for_filter(self):
        # two frontier vertices both improve vertex 2
        g = CSRGraph.from_edges(3, [0, 1], [2, 2], [1.0, 1.0])
        dist = np.asarray([0.0, 0.0, np.inf])
        out = advance(g, np.asarray([0, 1]), dist)
        assert sorted(out.improved.tolist()) == [2, 2]
        assert dist[2] == 1.0

    def test_atomic_min_semantics(self):
        # both writers race on vertex 2 with different candidates: min wins
        g = CSRGraph.from_edges(3, [0, 1], [2, 2], [5.0, 1.0])
        dist = np.asarray([0.0, 0.0, np.inf])
        advance(g, np.asarray([0, 1]), dist)
        assert dist[2] == 1.0

    def test_x2_equals_neighbour_list_length(self, small_rmat):
        dist = np.full(small_rmat.num_nodes, np.inf)
        dist[0] = 0.0
        frontier = np.asarray([0])
        out = advance(small_rmat, frontier, dist)
        assert out.x2 == small_rmat.out_degree(0)
        assert out.relaxations == out.x2


class TestFilter:
    def test_dedupes(self):
        out = filter_frontier(np.asarray([3, 1, 3, 2, 1]))
        assert list(out) == [1, 2, 3]

    def test_empty(self):
        assert filter_frontier(EMPTY).size == 0


class TestBisect:
    def test_split(self):
        dist = np.asarray([0.0, 5.0, 10.0, 15.0])
        near, far = bisect(np.asarray([1, 2, 3]), dist, 10.0)
        assert list(near) == [1]
        assert list(far) == [2, 3]  # split boundary goes far

    def test_empty(self):
        near, far = bisect(EMPTY, np.zeros(0), 1.0)
        assert near.size == 0 and far.size == 0


class TestDrainFarQueue:
    def test_pulls_next_band(self):
        dist = np.asarray([0.0, 2.5, 3.5, 9.0])
        far = np.asarray([1, 2, 3])
        frontier, remaining, lower, split, drains = drain_far_queue(
            far, dist, lower=0.0, split=2.0, delta=2.0
        )
        assert sorted(frontier.tolist()) == [1, 2]
        assert list(remaining) == [3]
        assert lower == 2.0
        # window jumps to min-far-distance + delta = 2.5 + 2.0
        assert split == pytest.approx(4.5)
        assert drains >= 1

    def test_skips_empty_bands_in_one_jump(self):
        dist = np.asarray([0.0, 1000.0])
        far = np.asarray([1])
        frontier, remaining, lower, split, drains = drain_far_queue(
            far, dist, lower=0.0, split=1.0, delta=1.0
        )
        assert list(frontier) == [1]
        assert remaining.size == 0
        assert split > 1000.0
        assert drains == 1000  # bands conceptually crossed

    def test_drops_stale_entries(self):
        # vertex 1 was improved to below the current split => stale copy
        dist = np.asarray([0.0, 0.5, 7.0])
        far = np.asarray([1, 2])
        frontier, remaining, lower, split, drains = drain_far_queue(
            far, dist, lower=0.0, split=2.0, delta=10.0
        )
        assert list(frontier) == [2]
        assert remaining.size == 0

    def test_dedupes_far_entries(self):
        dist = np.asarray([0.0, 3.0])
        far = np.asarray([1, 1, 1])
        frontier, remaining, *_ = drain_far_queue(
            far, dist, lower=0.0, split=2.0, delta=2.0
        )
        assert list(frontier) == [1]

    def test_empty_far(self):
        frontier, remaining, lower, split, drains = drain_far_queue(
            EMPTY, np.zeros(0), 0.0, 1.0, 1.0
        )
        assert frontier.size == 0 and drains == 0

    def test_all_stale(self):
        dist = np.asarray([0.0, 0.1])
        frontier, remaining, lower, split, drains = drain_far_queue(
            np.asarray([1]), dist, lower=0.0, split=2.0, delta=1.0
        )
        assert frontier.size == 0
        assert remaining.size == 0

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            drain_far_queue(np.asarray([0]), np.zeros(1), 0.0, 1.0, 0.0)
