"""Unit tests for the shared frontier-stage primitives."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import star_graph
from repro.sssp.frontier import (
    advance,
    batched_advance,
    batched_bisect,
    batched_drain_far,
    batched_filter,
    bisect,
    drain_far_queue,
    filter_frontier,
    ragged_arange,
)

EMPTY = np.zeros(0, dtype=np.int64)


class TestRaggedArange:
    def test_basic(self):
        assert list(ragged_arange(np.asarray([3, 1, 2]))) == [0, 1, 2, 0, 0, 1]

    def test_zeros_inside(self):
        assert list(ragged_arange(np.asarray([0, 2, 0, 1]))) == [0, 1, 0]

    def test_empty(self):
        assert ragged_arange(np.asarray([], dtype=np.int64)).size == 0

    def test_all_zero(self):
        assert ragged_arange(np.asarray([0, 0])).size == 0


class TestAdvance:
    def test_relaxes_and_reports(self, diamond):
        dist = np.full(4, np.inf)
        dist[0] = 0.0
        out = advance(diamond, np.asarray([0]), dist)
        assert out.x2 == 2  # both out-edges of 0 explored
        assert sorted(out.improved.tolist()) == [1, 2]
        assert dist[1] == 4.0 and dist[2] == 1.0

    def test_no_improvement_no_output(self, diamond):
        dist = np.zeros(4)  # everything already optimal at 0
        out = advance(diamond, np.asarray([0]), dist)
        assert out.x2 == 2
        assert out.improved.size == 0

    def test_empty_frontier(self, diamond):
        dist = np.full(4, np.inf)
        out = advance(diamond, EMPTY, dist)
        assert out.x2 == 0
        assert out.improved.size == 0

    def test_frontier_of_sinks(self):
        g = star_graph(4)
        dist = np.full(4, np.inf)
        dist[1] = 1.0
        out = advance(g, np.asarray([1]), dist)  # leaf: no out-edges
        assert out.x2 == 0

    def test_duplicates_preserved_for_filter(self):
        # two frontier vertices both improve vertex 2
        g = CSRGraph.from_edges(3, [0, 1], [2, 2], [1.0, 1.0])
        dist = np.asarray([0.0, 0.0, np.inf])
        out = advance(g, np.asarray([0, 1]), dist)
        assert sorted(out.improved.tolist()) == [2, 2]
        assert dist[2] == 1.0

    def test_atomic_min_semantics(self):
        # both writers race on vertex 2 with different candidates: min wins
        g = CSRGraph.from_edges(3, [0, 1], [2, 2], [5.0, 1.0])
        dist = np.asarray([0.0, 0.0, np.inf])
        advance(g, np.asarray([0, 1]), dist)
        assert dist[2] == 1.0

    def test_x2_equals_neighbour_list_length(self, small_rmat):
        dist = np.full(small_rmat.num_nodes, np.inf)
        dist[0] = 0.0
        frontier = np.asarray([0])
        out = advance(small_rmat, frontier, dist)
        assert out.x2 == small_rmat.out_degree(0)
        assert out.relaxations == out.x2


class TestFilter:
    def test_dedupes(self):
        out = filter_frontier(np.asarray([3, 1, 3, 2, 1]))
        assert list(out) == [1, 2, 3]

    def test_empty(self):
        assert filter_frontier(EMPTY).size == 0


class TestBisect:
    def test_split(self):
        dist = np.asarray([0.0, 5.0, 10.0, 15.0])
        near, far = bisect(np.asarray([1, 2, 3]), dist, 10.0)
        assert list(near) == [1]
        assert list(far) == [2, 3]  # split boundary goes far

    def test_empty(self):
        near, far = bisect(EMPTY, np.zeros(0), 1.0)
        assert near.size == 0 and far.size == 0


class TestDrainFarQueue:
    def test_pulls_next_band(self):
        dist = np.asarray([0.0, 2.5, 3.5, 9.0])
        far = np.asarray([1, 2, 3])
        frontier, remaining, lower, split, drains = drain_far_queue(
            far, dist, lower=0.0, split=2.0, delta=2.0
        )
        assert sorted(frontier.tolist()) == [1, 2]
        assert list(remaining) == [3]
        assert lower == 2.0
        # window jumps to min-far-distance + delta = 2.5 + 2.0
        assert split == pytest.approx(4.5)
        assert drains >= 1

    def test_skips_empty_bands_in_one_jump(self):
        dist = np.asarray([0.0, 1000.0])
        far = np.asarray([1])
        frontier, remaining, lower, split, drains = drain_far_queue(
            far, dist, lower=0.0, split=1.0, delta=1.0
        )
        assert list(frontier) == [1]
        assert remaining.size == 0
        assert split > 1000.0
        assert drains == 1000  # bands conceptually crossed

    def test_drops_stale_entries(self):
        # vertex 1 was improved to below the current split => stale copy
        dist = np.asarray([0.0, 0.5, 7.0])
        far = np.asarray([1, 2])
        frontier, remaining, lower, split, drains = drain_far_queue(
            far, dist, lower=0.0, split=2.0, delta=10.0
        )
        assert list(frontier) == [2]
        assert remaining.size == 0

    def test_dedupes_far_entries(self):
        dist = np.asarray([0.0, 3.0])
        far = np.asarray([1, 1, 1])
        frontier, remaining, *_ = drain_far_queue(
            far, dist, lower=0.0, split=2.0, delta=2.0
        )
        assert list(frontier) == [1]

    def test_empty_far(self):
        frontier, remaining, lower, split, drains = drain_far_queue(
            EMPTY, np.zeros(0), 0.0, 1.0, 1.0
        )
        assert frontier.size == 0 and drains == 0

    def test_all_stale(self):
        dist = np.asarray([0.0, 0.1])
        frontier, remaining, lower, split, drains = drain_far_queue(
            np.asarray([1]), dist, lower=0.0, split=2.0, delta=1.0
        )
        assert frontier.size == 0
        assert remaining.size == 0

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            drain_far_queue(np.asarray([0]), np.zeros(1), 0.0, 1.0, 0.0)


class TestRaggedArangeZeroRows:
    def test_trailing_zero_rows(self):
        assert list(ragged_arange(np.asarray([2, 0, 0]))) == [0, 1]

    def test_leading_zero_rows(self):
        assert list(ragged_arange(np.asarray([0, 0, 3]))) == [0, 1, 2]

    def test_single_zero(self):
        assert ragged_arange(np.asarray([0])).size == 0


class TestBatchedAdvance:
    def _flat(self, graph, sources):
        n = graph.num_nodes
        dist = np.full(len(sources) * n, np.inf)
        keys = np.asarray([q * n + s for q, s in enumerate(sources)])
        dist[keys] = 0.0
        return dist, keys

    def test_two_queries_relax_independently(self, diamond):
        n = diamond.num_nodes
        dist, frontier = self._flat(diamond, [0, 0])
        out = batched_advance(diamond, frontier, dist, 2)
        assert out.x2 == 4  # both copies explored vertex 0's two edges
        assert list(out.relaxations_per_query) == [2, 2]
        assert sorted(out.improved.tolist()) == [1, 2, n + 1, n + 2]
        # each query's block got the same single-source update
        assert dist[1] == dist[n + 1] == 4.0
        assert dist[2] == dist[n + 2] == 1.0

    def test_matches_single_source_advance(self, small_grid):
        n = small_grid.num_nodes
        sdist = np.full(n, np.inf)
        sdist[3] = 0.0
        single = advance(small_grid, np.asarray([3]), sdist)
        bdist, frontier = self._flat(small_grid, [3])
        batched = batched_advance(small_grid, frontier, bdist, 1)
        assert batched.x2 == single.x2
        assert np.array_equal(np.sort(batched.improved), np.sort(single.improved))
        assert np.array_equal(bdist, sdist)

    def test_empty_frontier(self, diamond):
        dist = np.full(2 * diamond.num_nodes, np.inf)
        out = batched_advance(diamond, EMPTY, dist, 2)
        assert out.x2 == 0
        assert out.improved.size == 0
        assert list(out.relaxations_per_query) == [0, 0]

    def test_frontier_of_sinks(self, small_path):
        n = small_path.num_nodes
        dist = np.full(n, 1.0)
        out = batched_advance(small_path, np.asarray([n - 1]), dist, 1)
        assert out.x2 == 0 and out.improved.size == 0


class TestBatchedFilter:
    def test_dedups_and_sorts(self):
        keys = np.asarray([9, 2, 9, 2, 5, 9])
        assert list(batched_filter(keys)) == [2, 5, 9]

    def test_empty(self):
        assert batched_filter(EMPTY).size == 0

    def test_already_unique_preserved(self):
        assert list(batched_filter(np.asarray([4, 1, 3]))) == [1, 3, 4]


class TestBatchedBisect:
    def test_per_query_windows(self):
        n = 4
        dist = np.asarray([0.0, 1.0, 5.0, np.inf, 0.0, 1.0, 5.0, np.inf])
        keys = np.asarray([1, 2, n + 1, n + 2])
        near, far = batched_bisect(keys, dist, np.asarray([2.0, 10.0]), n)
        # query 0 splits at 2: vertex 2 (d=5) goes far; query 1 at 10: both near
        assert list(near) == [1, n + 1, n + 2]
        assert list(far) == [2]

    def test_empty(self):
        near, far = batched_bisect(EMPTY, np.zeros(4), np.asarray([1.0]), 4)
        assert near.size == 0 and far.size == 0


class TestBatchedDrainFar:
    def test_starved_query_advances_window_only(self):
        n = 4
        # query 0 starved with far entries at d=6,8; query 1 not in need
        dist = np.asarray([0.0, 6.0, 8.0, np.inf, 0.0, 6.0, 8.0, np.inf])
        far = np.asarray([1, 2, n + 1])
        lower = np.zeros(2)
        split = np.asarray([2.0, 2.0])
        delta = np.asarray([2.0, 2.0])
        need = np.asarray([True, False])
        frontier, far_rem, new_lower, new_split, drains = batched_drain_far(
            far, dist, n, lower, split, delta, need
        )
        # window jumps to max(split+delta, dmin+delta) = max(4, 8) = 8
        assert new_split[0] == 8.0 and new_lower[0] == 2.0
        assert new_split[1] == 2.0 and new_lower[1] == 0.0  # untouched
        assert list(frontier) == [1]  # d=6 < 8 pulled near
        assert n + 1 in far_rem and 2 in far_rem  # other query passes through
        assert drains[0] >= 1 and drains[1] == 0

    def test_stale_entries_dropped(self):
        n = 3
        dist = np.asarray([0.0, 0.5, np.inf])  # vertex 1 improved below split
        far = np.asarray([1])
        frontier, far_rem, _, new_split, drains = batched_drain_far(
            far,
            dist,
            n,
            np.zeros(1),
            np.asarray([1.0]),
            np.asarray([1.0]),
            np.asarray([True]),
        )
        assert frontier.size == 0 and far_rem.size == 0
        assert new_split[0] == 1.0  # all-stale: window holds
        assert drains[0] == 1  # but the scan still counts

    def test_precomputed_far_q_equivalent(self):
        n = 4
        dist = np.asarray([0.0, 6.0, 8.0, np.inf, 0.0, 6.0, 8.0, np.inf])
        far = np.asarray([1, 2, n + 1])
        args = (np.zeros(2), np.asarray([2.0, 2.0]), np.asarray([2.0, 2.0]))
        need = np.asarray([True, True])
        base = batched_drain_far(far, dist, n, *args, need)
        pre = batched_drain_far(far, dist, n, *args, need, far_q=far // n)
        for a, b in zip(base, pre):
            assert np.array_equal(a, b)

    def test_nonpositive_delta_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            batched_drain_far(
                np.asarray([1]),
                np.zeros(2),
                2,
                np.zeros(1),
                np.ones(1),
                np.zeros(1),
                np.asarray([True]),
            )

    def test_empty_far(self):
        frontier, far_rem, lower, split, drains = batched_drain_far(
            EMPTY,
            np.zeros(2),
            2,
            np.zeros(1),
            np.ones(1),
            np.ones(1),
            np.asarray([True]),
        )
        assert frontier.size == 0 and far_rem.size == 0
        assert drains[0] == 0
