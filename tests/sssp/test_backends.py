"""Kernel-backend registry: selection, fallback, and bit-identity."""

import warnings

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_road_network,
    random_weighted_graph,
)
from repro.sssp import backends
from repro.sssp.backends import (
    BackendUnavailableError,
    KernelBackend,
    NumpyBackend,
    backend_available,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.sssp.backends import numba_backend
from repro.sssp.batch_kernels import batched_nearfar_sssp
from repro.sssp.nearfar import nearfar_sssp

# one per family: undirected road grid, undirected scale-free,
# directed Erdos-Renyi, unstructured random digraph
GRAPHS = [
    grid_road_network(14, 14, seed=3),
    barabasi_albert(300, 3, seed=5),
    erdos_renyi(400, 6.0, seed=7),
    random_weighted_graph(350, 2400, seed=11),
]


@pytest.fixture(autouse=True)
def _clean_backend_state():
    """Isolate cached instances and warning dedup between tests."""
    backends._reset_backend_state()
    yield
    backends._reset_backend_state()
    # drop any backend a test registered on top of the built-ins
    for name in list(backends._REGISTRY):
        if name not in ("numpy", "numba"):
            del backends._REGISTRY[name]


class TestRegistry:
    def test_builtin_names(self):
        assert "numpy" in backend_names()
        assert "numba" in backend_names()

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="numba, numpy"):
            get_backend("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend 'cuda'"):
            resolve_backend("cuda")

    def test_numpy_always_available(self):
        assert backend_available("numpy")
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_unregistered_never_available(self):
        assert not backend_available("cuda")

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_register_rejects_bad_names(self):
        with pytest.raises(ValueError):
            register_backend("", NumpyBackend)

    def test_custom_backend_registers_and_resolves(self):
        class Custom(NumpyBackend):
            name = "custom"

        register_backend("custom", Custom)
        assert "custom" in backend_names()
        assert resolve_backend("custom").name == "custom"


class TestResolutionPrecedence:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_env_overrides_default(self, monkeypatch):
        class Custom(NumpyBackend):
            name = "custom"

        register_backend("custom", Custom)
        monkeypatch.setenv(backends.ENV_VAR, "custom")
        assert resolve_backend(None).name == "custom"

    def test_arg_overrides_env(self, monkeypatch):
        class Custom(NumpyBackend):
            name = "custom"

        register_backend("custom", Custom)
        monkeypatch.setenv(backends.ENV_VAR, "custom")
        assert resolve_backend("numpy").name == "numpy"

    def test_instance_passthrough(self):
        instance = NumpyBackend()
        assert resolve_backend(instance) is instance

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="bogus"):
            resolve_backend(None)


class TestNumbaFallback:
    @pytest.fixture()
    def no_numba(self, monkeypatch):
        def _raise():
            raise ImportError("No module named 'numba'")

        monkeypatch.setattr(numba_backend, "_load_numba", _raise)
        backends._reset_backend_state()

    def test_falls_back_to_numpy_with_one_warning(self, no_numba):
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            resolved = resolve_backend("numba")
        assert resolved.name == "numpy"
        # second resolve: same fallback, no second warning
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            again = resolve_backend("numba")
        assert again.name == "numpy"
        assert caught == []

    def test_get_backend_raises_without_fallback(self, no_numba):
        with pytest.raises(BackendUnavailableError):
            get_backend("numba")

    def test_reported_unavailable(self, no_numba):
        assert not backend_available("numba")

    def test_run_under_fallback_matches_numpy(self, no_numba):
        graph = GRAPHS[0]
        baseline, _ = nearfar_sssp(graph, 0, backend="numpy")
        with pytest.warns(RuntimeWarning):
            result, trace = nearfar_sssp(graph, 0, backend="numba")
        assert np.array_equal(baseline.dist, result.dist)
        # the stamp records what actually ran
        assert trace.meta["backend"] == "numpy"
        assert result.extra["backend"] == "numpy"


def _resolve_quietly(name):
    """Resolve a backend, tolerating the numba-fallback warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return resolve_backend(name)


class TestBitIdentity:
    """Distances must match the numpy reference byte-for-byte."""

    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    @pytest.mark.parametrize("gi", range(len(GRAPHS)))
    def test_single_source(self, gi, backend):
        graph = GRAPHS[gi]
        resolved = _resolve_quietly(backend)
        for source in (0, graph.num_nodes // 2):
            baseline, _ = nearfar_sssp(graph, source, backend="numpy")
            result, _ = nearfar_sssp(graph, source, backend=resolved)
            assert np.array_equal(baseline.dist, result.dist)
            assert baseline.iterations == result.iterations
            assert baseline.relaxations == result.relaxations

    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    @pytest.mark.parametrize("B", [1, 4, 64, 256])
    @pytest.mark.parametrize("gi", range(len(GRAPHS)))
    def test_multi_source(self, gi, B, backend):
        graph = GRAPHS[gi]
        resolved = _resolve_quietly(backend)
        rng = np.random.default_rng(gi * 1000 + B)
        sources = rng.integers(0, graph.num_nodes, size=B)
        baseline = batched_nearfar_sssp(graph, sources, backend="numpy")
        results = batched_nearfar_sssp(graph, sources, backend=resolved)
        for ref, got in zip(baseline, results):
            assert np.array_equal(ref.dist, got.dist)
            assert ref.iterations == got.iterations
            assert ref.relaxations == got.relaxations

    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    def test_batched_matches_looped_single_source(self, backend):
        graph = GRAPHS[2]
        resolved = _resolve_quietly(backend)
        sources = [1, 17, 42, 99]
        batched = batched_nearfar_sssp(graph, sources, backend=resolved)
        for source, got in zip(sources, batched):
            ref, _ = nearfar_sssp(graph, source, backend="numpy")
            assert np.array_equal(ref.dist, got.dist)


@pytest.mark.skipif(
    not backend_available("numba"), reason="numba wheel unavailable"
)
class TestRealNumba:
    """Strict checks that only run where the JIT actually compiles."""

    def test_resolves_to_itself(self):
        assert resolve_backend("numba").name == "numba"

    def test_compiled_advance_bit_identical(self):
        graph = GRAPHS[1]
        kb = resolve_backend("numba")
        ref, _ = nearfar_sssp(graph, 3, backend="numpy")
        got, trace = nearfar_sssp(graph, 3, backend=kb)
        assert trace.meta["backend"] == "numba"
        assert np.array_equal(ref.dist, got.dist)


class TestStamping:
    def test_trace_meta_and_extra(self):
        graph = GRAPHS[0]
        result, trace = nearfar_sssp(graph, 0, backend="numpy")
        assert trace.meta["backend"] == "numpy"
        assert result.extra["backend"] == "numpy"

    def test_batched_extra(self):
        graph = GRAPHS[0]
        results = batched_nearfar_sssp(graph, [0, 1], backend="numpy")
        assert all(r.extra["backend"] == "numpy" for r in results)

    def test_run_start_event_carries_backend(self):
        from repro import obs

        graph = GRAPHS[0]
        sink = obs.ListSink()
        with obs.use(events=sink):
            nearfar_sssp(graph, 0, backend="numpy")
            batched_nearfar_sssp(graph, [0, 1], backend="numpy")
        [start] = sink.of_type("run_start")
        assert start["backend"] == "numpy"
        [bstart] = sink.of_type("batch_run_start")
        assert bstart["backend"] == "numpy"


class TestKernelBackendContract:
    def test_abstract_methods_raise(self):
        kb = KernelBackend()
        empty = np.zeros(0, dtype=np.int64)
        for call in (
            lambda: kb.advance(GRAPHS[0], empty, empty.astype(float)),
            lambda: kb.filter_frontier(empty),
            lambda: kb.bisect(empty, empty.astype(float), 1.0),
            lambda: kb.drain_far_queue(empty, empty.astype(float), 0, 1, 1),
            lambda: kb.batched_advance(GRAPHS[0], empty, empty.astype(float), 1),
            lambda: kb.batched_filter(empty),
            lambda: kb.batched_bisect(empty, empty.astype(float), empty, 1),
            lambda: kb.batched_drain_far(
                empty, empty.astype(float), 1, empty, empty, empty, empty
            ),
        ):
            with pytest.raises(NotImplementedError):
                call()

    def test_repr_names_backend(self):
        assert "numpy" in repr(NumpyBackend())
