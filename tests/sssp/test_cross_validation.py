"""Property-based cross-validation of every SSSP implementation.

The central correctness invariant of the whole reproduction: *no delta
schedule can change the answer*.  Near+far (and its self-tuning
variant) are label-correcting, so for any graph, any source and any
delta/set-point, the distances must equal Dijkstra's exactly.  These
tests let hypothesis hunt for counterexamples.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AdaptiveParams, adaptive_sssp
from repro.graph.csr import CSRGraph
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import nearfar_sssp
from repro.sssp.result import assert_distances_close, verify_optimality

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def graphs(draw, max_nodes: int = 40, max_edges: int = 160):
    """Random weighted digraphs, including degenerate shapes."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    integer_weights = draw(st.booleans())
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    if integer_weights:
        w = rng.integers(1, 100, size=m).astype(float)
    else:
        # include near-zero weights to stress bucket boundaries
        w = rng.uniform(0.0, 10.0, size=m)
    g = CSRGraph.from_edges(n, src, dst, w)
    source = draw(st.integers(min_value=0, max_value=n - 1))
    return g, source


_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# pairwise agreement
# ----------------------------------------------------------------------


@given(graphs())
@_settings
def test_bellman_ford_matches_dijkstra(case):
    g, s = case
    assert_distances_close(dijkstra(g, s), bellman_ford(g, s))


@given(graphs(), st.floats(min_value=0.05, max_value=500.0))
@_settings
def test_delta_stepping_matches_dijkstra_any_delta(case, delta):
    g, s = case
    assert_distances_close(dijkstra(g, s), delta_stepping(g, s, delta))


@given(graphs(), st.floats(min_value=0.05, max_value=500.0))
@_settings
def test_nearfar_matches_dijkstra_any_delta(case, delta):
    g, s = case
    result, _ = nearfar_sssp(g, s, delta=delta)
    assert_distances_close(dijkstra(g, s), result)


@given(
    graphs(),
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=0.05, max_value=100.0),
)
@_settings
def test_adaptive_matches_dijkstra_any_setpoint(case, setpoint, initial_delta):
    g, s = case
    result, _, _ = adaptive_sssp(
        g, s, AdaptiveParams(setpoint=setpoint, initial_delta=initial_delta)
    )
    assert_distances_close(dijkstra(g, s), result)


# ----------------------------------------------------------------------
# Bellman optimality conditions, checked against the graph directly
# (no trust in any reference implementation)
# ----------------------------------------------------------------------


@given(graphs())
@_settings
def test_nearfar_satisfies_bellman_conditions(case):
    g, s = case
    result, _ = nearfar_sssp(g, s)
    verify_optimality(g, result)


@given(graphs(), st.floats(min_value=1.0, max_value=1e4))
@_settings
def test_adaptive_satisfies_bellman_conditions(case, setpoint):
    g, s = case
    result, _, _ = adaptive_sssp(g, s, AdaptiveParams(setpoint=setpoint))
    verify_optimality(g, result)


# ----------------------------------------------------------------------
# structural invariants
# ----------------------------------------------------------------------


@given(graphs())
@_settings
def test_reachability_equals_bfs_closure(case):
    """A vertex has finite distance iff it is reachable."""
    from repro.graph.properties import bfs_levels

    g, s = case
    result, _ = nearfar_sssp(g, s)
    reachable = bfs_levels(g, s) >= 0
    assert np.array_equal(np.isfinite(result.dist), reachable)


@given(graphs())
@_settings
def test_adaptive_trace_counter_sanity(case):
    """X counters respect the pipeline's can-only-shrink structure."""
    g, s = case
    _, trace, _ = adaptive_sssp(g, s, AdaptiveParams(setpoint=64.0))
    for rec in trace:
        assert rec.x1 >= 1
        assert 0 <= rec.x3 <= rec.x2
        assert 0 <= rec.x4
        assert rec.delta > 0
        assert rec.far_size >= 0
