"""Unit tests for Meyer-Sanders delta-stepping."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import path_graph, star_graph
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import assert_distances_close


class TestCorrectness:
    @pytest.mark.parametrize("delta", [0.1, 0.5, 1.0, 3.0, 100.0])
    def test_any_delta_exact_on_grid(self, small_grid, delta):
        assert_distances_close(
            dijkstra(small_grid, 0), delta_stepping(small_grid, 0, delta)
        )

    @pytest.mark.parametrize("delta", [1.0, 10.0, 50.0, 1000.0])
    def test_any_delta_exact_on_rmat(self, small_rmat, delta):
        assert_distances_close(
            dijkstra(small_rmat, 0), delta_stepping(small_rmat, 0, delta)
        )

    def test_random_batch_default_delta(self, random_graphs):
        for g in random_graphs:
            assert_distances_close(dijkstra(g, 0), delta_stepping(g, 0))

    def test_disconnected(self, disconnected):
        r = delta_stepping(disconnected, 0, 1.0)
        assert np.isinf(r.dist[2:]).all()

    def test_zero_weight_edges(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3], [0.0, 1.0, 0.0])
        r = delta_stepping(g, 0, 0.5)
        assert list(r.dist) == [0.0, 0.0, 1.0, 1.0]


class TestBucketBehaviour:
    def test_tiny_delta_more_phases_on_grid(self, small_grid):
        avg = small_grid.average_weight
        few = delta_stepping(small_grid, 0, avg * 50)
        many = delta_stepping(small_grid, 0, avg * 0.2)
        assert many.iterations > few.iterations

    def test_huge_delta_becomes_bellman_ford_like(self, small_grid):
        r = delta_stepping(small_grid, 0, 1e9)
        # one bucket: inner loop iterates like level-synchronous BF
        assert r.iterations <= small_grid.num_nodes

    def test_star_single_phase(self):
        g = star_graph(100)
        r = delta_stepping(g, 0, 10.0)
        assert r.iterations <= 3


class TestValidation:
    def test_rejects_nonpositive_delta(self, small_grid):
        with pytest.raises(ValueError, match="delta must be positive"):
            delta_stepping(small_grid, 0, 0.0)

    def test_rejects_negative_weights(self):
        g = CSRGraph.from_edges(2, [0], [1], [-1.0])
        with pytest.raises(ValueError):
            delta_stepping(g, 0)

    def test_rejects_bad_source(self, small_grid):
        with pytest.raises(ValueError):
            delta_stepping(small_grid, -1)

    def test_default_delta_recorded(self, small_grid):
        r = delta_stepping(small_grid, 0)
        assert r.extra["delta"] == pytest.approx(small_grid.average_weight)
