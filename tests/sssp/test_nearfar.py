"""Unit tests for the baseline near+far algorithm and its trace."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import path_graph, star_graph
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import NearFarParams, nearfar_sssp, suggest_delta
from repro.sssp.result import assert_distances_close


class TestCorrectness:
    @pytest.mark.parametrize("delta_mult", [0.1, 0.5, 1.0, 4.0, 100.0])
    def test_exact_for_any_delta_grid(self, small_grid, delta_mult):
        delta = suggest_delta(small_grid) * delta_mult
        result, _ = nearfar_sssp(small_grid, 0, delta=delta)
        assert_distances_close(dijkstra(small_grid, 0), result)

    @pytest.mark.parametrize("delta_mult", [0.25, 1.0, 16.0])
    def test_exact_for_any_delta_rmat(self, small_rmat, delta_mult):
        delta = suggest_delta(small_rmat) * delta_mult
        result, _ = nearfar_sssp(small_rmat, 0, delta=delta)
        assert_distances_close(dijkstra(small_rmat, 0), result)

    def test_random_batch(self, random_graphs):
        for g in random_graphs:
            result, _ = nearfar_sssp(g, 0)
            assert_distances_close(dijkstra(g, 0), result)

    def test_multiple_sources(self, small_grid):
        for src in (0, 17, 63):
            result, _ = nearfar_sssp(small_grid, src)
            assert_distances_close(dijkstra(small_grid, src), result)

    def test_disconnected(self, disconnected):
        result, _ = nearfar_sssp(disconnected, 0, delta=1.0)
        assert np.isinf(result.dist[2:]).all()

    def test_zero_weight_edges(self):
        g = CSRGraph.from_edges(4, [0, 1, 2], [1, 2, 3], [0.0, 1.0, 0.0])
        result, _ = nearfar_sssp(g, 0, delta=0.5)
        assert list(result.dist) == [0.0, 0.0, 1.0, 1.0]


class TestTrace:
    def test_counters_shape(self, small_grid):
        _, trace = nearfar_sssp(small_grid, 0)
        assert trace.num_iterations > 0
        for rec in trace:
            assert rec.x1 >= 1  # an iteration only runs on a non-empty frontier
            assert rec.x3 <= rec.x2  # filter only removes
            assert rec.x4 <= rec.x3  # bisect only removes from the frontier
            assert rec.delta > 0

    def test_first_iteration_single_source(self, small_grid):
        _, trace = nearfar_sssp(small_grid, 0)
        assert trace.records[0].x1 == 1

    def test_x2_is_edge_expansion(self, small_rmat):
        result, trace = nearfar_sssp(small_rmat, 0)
        assert trace.total_edges_expanded == result.relaxations

    def test_collect_trace_false(self, small_grid):
        result, trace = nearfar_sssp(small_grid, 0, collect_trace=False)
        assert trace.num_iterations == 0
        assert result.iterations > 0

    def test_static_delta_in_every_record(self, small_grid):
        delta = 3.21
        _, trace = nearfar_sssp(small_grid, 0, delta=delta)
        assert np.all(trace.deltas == delta)

    def test_parallelism_properties(self, small_rmat):
        hub = int(np.argmax(np.diff(small_rmat.indptr)))
        _, trace = nearfar_sssp(small_rmat, hub)
        assert trace.average_parallelism > 0
        assert trace.parallelism_cv >= 0

    def test_far_queue_drains_recorded(self):
        # a long path with delta 1 forces a drain in nearly every iteration
        g = path_graph(20, weight=1.0)
        _, trace = nearfar_sssp(g, 0, delta=0.9)
        assert trace.column("drains").sum() > 0


class TestParams:
    def test_params_and_delta_exclusive(self, small_grid):
        with pytest.raises(ValueError, match="not both"):
            nearfar_sssp(small_grid, 0, NearFarParams(delta=1.0), delta=2.0)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            NearFarParams(delta=0.0)
        with pytest.raises(ValueError):
            NearFarParams(delta=-1.0)

    def test_bad_max_iterations(self):
        with pytest.raises(ValueError):
            NearFarParams(delta=1.0, max_iterations=-1)

    def test_max_iterations_cap(self, small_grid):
        result, trace = nearfar_sssp(
            small_grid, 0, NearFarParams(delta=0.1, max_iterations=3)
        )
        assert result.iterations == 3

    def test_bad_source(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            nearfar_sssp(small_grid, 1000)

    def test_negative_weights_rejected(self):
        g = CSRGraph.from_edges(2, [0], [1], [-1.0])
        with pytest.raises(ValueError, match="non-negative"):
            nearfar_sssp(g, 0)

    def test_suggest_delta_positive(self, small_grid):
        assert suggest_delta(small_grid) > 0
        assert suggest_delta(CSRGraph.empty(3)) > 0


class TestDeltaEffects:
    def test_larger_delta_fewer_iterations(self, small_grid):
        base = suggest_delta(small_grid)
        small_d, _ = nearfar_sssp(small_grid, 0, delta=base * 0.25)
        large_d, _ = nearfar_sssp(small_grid, 0, delta=base * 16)
        assert large_d.iterations < small_d.iterations

    def test_larger_delta_more_parallelism(self, small_grid):
        base = suggest_delta(small_grid)
        _, t_small = nearfar_sssp(small_grid, 0, delta=base * 0.25)
        _, t_large = nearfar_sssp(small_grid, 0, delta=base * 16)
        assert t_large.average_parallelism > t_small.average_parallelism

    def test_huge_delta_no_far_queue(self, small_grid):
        _, trace = nearfar_sssp(small_grid, 0, delta=1e12)
        assert np.all(trace.column("far_size") == 0)

    def test_star_one_advance(self):
        g = star_graph(50)
        result, trace = nearfar_sssp(g, 0, delta=10.0)
        assert trace.records[0].x2 == 49
