"""Unit tests for vectorised Bellman-Ford."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import path_graph
from repro.sssp.bellman_ford import NegativeCycleError, bellman_ford
from repro.sssp.dijkstra import dijkstra
from repro.sssp.result import assert_distances_close


class TestAgainstDijkstra:
    def test_small_graphs(self, triangle, diamond, small_grid, small_rmat):
        for g in (triangle, diamond, small_grid, small_rmat):
            assert_distances_close(dijkstra(g, 0), bellman_ford(g, 0))

    def test_random_batch(self, random_graphs):
        for g in random_graphs:
            assert_distances_close(dijkstra(g, 0), bellman_ford(g, 0))


class TestNegativeWeights:
    def test_negative_edge_handled(self):
        # 0->1 (4), 0->2 (2), 2->1 (-1): best 0->1 is 1
        g = CSRGraph.from_edges(3, [0, 0, 2], [1, 2, 1], [4.0, 2.0, -1.0])
        r = bellman_ford(g, 0)
        assert r.dist[1] == 1.0

    def test_negative_cycle_detected(self):
        g = CSRGraph.from_edges(3, [0, 1, 2], [1, 2, 1], [1.0, -2.0, 1.0])
        with pytest.raises(NegativeCycleError):
            bellman_ford(g, 0)

    def test_unreachable_negative_cycle_ok(self):
        # negative cycle on {2, 3} but the source component is {0, 1}
        g = CSRGraph.from_edges(
            4, [0, 2, 3], [1, 3, 2], [1.0, -2.0, 1.0]
        )
        r = bellman_ford(g, 0)
        assert r.dist[1] == 1.0
        assert np.isinf(r.dist[2])

    def test_zero_cycle_ok(self):
        g = CSRGraph.from_edges(2, [0, 1], [1, 0], [0.0, 0.0])
        r = bellman_ford(g, 0)
        assert list(r.dist) == [0.0, 0.0]


class TestMechanics:
    def test_early_exit(self):
        g = path_graph(100)
        r = bellman_ford(g, 99)  # nothing reachable: converges immediately
        assert r.iterations <= 2

    def test_path_iterations_linear(self):
        g = path_graph(30)
        r = bellman_ford(g, 0)
        # one round per hop plus one to observe the fixed point
        assert 30 <= r.iterations + 2 <= 33

    def test_source_out_of_range(self, triangle):
        with pytest.raises(ValueError):
            bellman_ford(triangle, 99)

    def test_edgeless_graph(self):
        r = bellman_ford(CSRGraph.empty(4), 2)
        assert r.dist[2] == 0.0
        assert np.isinf(r.dist[0])

    def test_relaxation_accounting(self, small_grid):
        r = bellman_ford(small_grid, 0)
        assert r.relaxations == r.iterations * small_grid.num_edges
