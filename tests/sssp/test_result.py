"""Unit tests for SSSPResult and validation helpers."""

import numpy as np
import pytest

from repro.sssp.result import (
    SSSPResult,
    assert_distances_close,
    extract_path,
)


def _result(dist, source=0, pred=None):
    return SSSPResult(dist=np.asarray(dist, dtype=float), source=source, pred=pred)


class TestAssertDistancesClose:
    def test_equal_passes(self):
        assert_distances_close(_result([0, 1, 2]), _result([0, 1, 2]))

    def test_tolerant_to_fp_noise(self):
        assert_distances_close(_result([0, 1.0]), _result([0, 1.0 + 1e-9]))

    def test_accepts_arrays(self):
        assert_distances_close(np.asarray([0.0, 1.0]), np.asarray([0.0, 1.0]))

    def test_inf_positions_must_match(self):
        with pytest.raises(AssertionError, match="reachability"):
            assert_distances_close(
                _result([0, np.inf]), _result([0, 5.0])
            )

    def test_value_mismatch(self):
        with pytest.raises(AssertionError, match="distance mismatch"):
            assert_distances_close(_result([0, 1.0]), _result([0, 2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(AssertionError, match="shape"):
            assert_distances_close(_result([0.0]), _result([0.0, 1.0]))

    def test_matching_infs_pass(self):
        assert_distances_close(
            _result([0, np.inf, 2]), _result([0, np.inf, 2])
        )


class TestResultProperties:
    def test_num_reached(self):
        r = _result([0, 1, np.inf])
        assert r.num_reached == 2

    def test_finite_distances(self):
        r = _result([0, 1, np.inf])
        assert list(r.finite_distances()) == [0.0, 1.0]


class TestExtractPath:
    def test_broken_chain_detected(self):
        pred = np.asarray([-1, -1, 1])  # 2's chain hits -1 before the source
        r = _result([0, 1, 2], pred=pred)
        with pytest.raises(ValueError, match="broken"):
            extract_path(r, 2)

    def test_cycle_detected(self):
        pred = np.asarray([-1, 2, 1])  # 1 <-> 2 predecessor loop
        r = _result([0, 1, 2], pred=pred)
        with pytest.raises(ValueError, match="cycle"):
            extract_path(r, 2)
