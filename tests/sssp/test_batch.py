"""Unit tests for multi-source batches."""

import numpy as np
import pytest

from repro.core import AdaptiveParams, adaptive_sssp
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, star_graph
from repro.sssp.batch import (
    BatchRun,
    batch_run,
    pooled_parallelism,
    sample_sources,
)
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import nearfar_sssp
from repro.sssp.result import assert_distances_close


def _nearfar_runner(graph, source):
    """Module-level so process-mode workers can pickle it."""
    return nearfar_sssp(graph, source)


class TestSampleSources:
    def test_count_and_uniqueness(self, small_grid):
        src = sample_sources(small_grid, 10, seed=1)
        assert src.size == 10
        assert np.unique(src).size == 10

    def test_deterministic(self, small_grid):
        a = sample_sources(small_grid, 5, seed=2)
        b = sample_sources(small_grid, 5, seed=2)
        assert np.array_equal(a, b)

    def test_degree_filter(self):
        g = star_graph(10)  # only vertex 0 has out-edges
        src = sample_sources(g, 1, min_out_degree=1)
        assert list(src) == [0]

    def test_insufficient_candidates(self):
        g = star_graph(10)
        with pytest.raises(ValueError, match="cannot sample"):
            sample_sources(g, 2, min_out_degree=1)

    def test_rejects_zero_count(self, small_grid):
        with pytest.raises(ValueError):
            sample_sources(small_grid, 0)

    def test_empty_graph_reports_no_candidates(self):
        with pytest.raises(ValueError, match="nothing to sample"):
            sample_sources(CSRGraph.empty(0, name="void"), 1)

    def test_edgeless_graph_reports_no_candidates(self):
        """Vertices exist but none has out-degree >= 1."""
        with pytest.raises(ValueError, match="no vertices with out-degree"):
            sample_sources(CSRGraph.empty(5), 1)

    def test_count_above_candidates_still_clear(self, small_grid):
        total = small_grid.num_nodes
        with pytest.raises(ValueError, match="cannot sample"):
            sample_sources(small_grid, total + 1)


class TestBatchRun:
    @pytest.fixture(scope="class")
    def grid(self):
        return grid_road_network(20, 20, seed=3)

    def test_baseline_batch(self, grid):
        sources = sample_sources(grid, 4, seed=0)
        batch = batch_run(
            grid, sources, lambda g, s: nearfar_sssp(g, s), label="nearfar"
        )
        assert batch.count == 4
        assert batch.iterations().min() > 0
        for s, result in zip(batch.sources, batch.results):
            assert_distances_close(dijkstra(grid, int(s)), result)

    def test_adaptive_batch(self, grid):
        def runner(g, s):
            result, trace, _ = adaptive_sssp(g, s, AdaptiveParams(setpoint=100.0))
            return result, trace

        sources = sample_sources(grid, 3, seed=1)
        batch = batch_run(grid, sources, runner, label="adaptive")
        row = batch.as_row()
        assert row["sources"] == 3
        assert row["pooled median par"] > 0

    def test_empty_sources_rejected(self, grid):
        with pytest.raises(ValueError):
            batch_run(grid, [], lambda g, s: nearfar_sssp(g, s))

    def test_pooled_parallelism_length(self, grid):
        sources = sample_sources(grid, 3, seed=2)
        batch = batch_run(grid, sources, lambda g, s: nearfar_sssp(g, s))
        pooled = pooled_parallelism(batch.traces)
        assert pooled.size == sum(len(t) for t in batch.traces)

    def test_pooled_parallelism_empty(self):
        assert pooled_parallelism([]).size == 0

    def test_summary_statistics(self, grid):
        sources = sample_sources(grid, 3, seed=4)
        batch = batch_run(grid, sources, lambda g, s: nearfar_sssp(g, s))
        s = batch.parallelism_summary()
        assert s.count == pooled_parallelism(batch.traces).size
        assert s.minimum <= s.median <= s.maximum


class TestParallelBatch:
    """The satellite guarantee: parallel results match the serial path."""

    @pytest.fixture(scope="class")
    def grid(self):
        return grid_road_network(20, 20, seed=3)

    @pytest.fixture(scope="class")
    def serial(self, grid):
        sources = sample_sources(grid, 6, seed=7)
        return batch_run(grid, sources, _nearfar_runner, label="serial")

    def test_thread_mode_matches_serial(self, grid, serial):
        parallel = batch_run(
            grid,
            serial.sources,
            _nearfar_runner,
            label="threads",
            parallel=True,
            max_workers=4,
        )
        assert np.array_equal(parallel.sources, serial.sources)
        for a, b in zip(serial.results, parallel.results):
            assert a.source == b.source  # deterministic ordering
            assert_distances_close(a, b)
            assert a.iterations == b.iterations
            assert a.relaxations == b.relaxations
        for ta, tb in zip(serial.traces, parallel.traces):
            assert np.array_equal(ta.parallelism, tb.parallelism)

    def test_process_mode_matches_serial(self, grid, serial):
        parallel = batch_run(
            grid,
            serial.sources,
            _nearfar_runner,
            label="processes",
            parallel=True,
            max_workers=2,
            mode="process",
        )
        for a, b in zip(serial.results, parallel.results):
            assert a.source == b.source
            assert_distances_close(a, b)
            assert a.relaxations == b.relaxations

    def test_max_workers_alone_enables_parallel(self, grid, serial):
        parallel = batch_run(
            grid, serial.sources, _nearfar_runner, max_workers=2
        )
        for a, b in zip(serial.results, parallel.results):
            assert_distances_close(a, b)

    def test_closures_work_in_thread_mode(self, grid):
        setpoint = 100.0

        def runner(g, s):
            result, trace, _ = adaptive_sssp(
                g, s, AdaptiveParams(setpoint=setpoint)
            )
            return result, trace

        sources = sample_sources(grid, 3, seed=1)
        serial = batch_run(grid, sources, runner)
        parallel = batch_run(grid, sources, runner, parallel=True, max_workers=3)
        for a, b in zip(serial.results, parallel.results):
            assert_distances_close(a, b)
            assert a.iterations == b.iterations


class TestBatchedMode:
    @pytest.fixture(scope="class")
    def grid(self):
        return grid_road_network(16, 16, seed=5)

    def test_matches_serial_loop(self, grid):
        sources = sample_sources(grid, 5, seed=7)
        serial = batch_run(grid, sources, _nearfar_runner, label="loop")
        batched = batch_run(grid, sources, _nearfar_runner, mode="batched")
        for loop, multi in zip(serial.results, batched.results):
            assert np.array_equal(loop.dist, multi.dist)

    def test_runner_is_ignored(self, grid):
        def exploding_runner(g, s):
            raise AssertionError("batched mode must not call the runner")

        batch = batch_run(grid, [0, 3], exploding_runner, mode="batched")
        assert batch.count == 2
        for s, result in zip(batch.sources, batch.results):
            assert_distances_close(dijkstra(grid, int(s)), result)

    def test_traces_are_empty_placeholders(self, grid):
        batch = batch_run(grid, [0, 9], _nearfar_runner, mode="batched")
        assert len(batch.traces) == 2
        for s, trace in zip(batch.sources, batch.traces):
            assert len(trace) == 0
            assert trace.source == int(s)
            assert trace.algorithm == "nearfar"

    def test_delta_override(self, grid):
        batch = batch_run(
            grid, [0], _nearfar_runner, mode="batched", delta=4.0
        )
        assert batch.results[0].extra["delta"] == 4.0
        assert_distances_close(dijkstra(grid, 0), batch.results[0])

    def test_as_row_still_works(self, grid):
        batch = batch_run(grid, [0, 5, 9], _nearfar_runner, mode="batched")
        row = batch.as_row()
        assert row["sources"] == 3
        assert batch.iterations().min() > 0

    def test_empty_sources_rejected(self, grid):
        with pytest.raises(ValueError, match="non-empty"):
            batch_run(grid, [], _nearfar_runner, mode="batched")
