"""Unit tests for multi-source batches."""

import numpy as np
import pytest

from repro.core import AdaptiveParams, adaptive_sssp
from repro.graph.generators import grid_road_network, star_graph
from repro.sssp.batch import (
    BatchRun,
    batch_run,
    pooled_parallelism,
    sample_sources,
)
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import nearfar_sssp
from repro.sssp.result import assert_distances_close


class TestSampleSources:
    def test_count_and_uniqueness(self, small_grid):
        src = sample_sources(small_grid, 10, seed=1)
        assert src.size == 10
        assert np.unique(src).size == 10

    def test_deterministic(self, small_grid):
        a = sample_sources(small_grid, 5, seed=2)
        b = sample_sources(small_grid, 5, seed=2)
        assert np.array_equal(a, b)

    def test_degree_filter(self):
        g = star_graph(10)  # only vertex 0 has out-edges
        src = sample_sources(g, 1, min_out_degree=1)
        assert list(src) == [0]

    def test_insufficient_candidates(self):
        g = star_graph(10)
        with pytest.raises(ValueError, match="cannot sample"):
            sample_sources(g, 2, min_out_degree=1)

    def test_rejects_zero_count(self, small_grid):
        with pytest.raises(ValueError):
            sample_sources(small_grid, 0)


class TestBatchRun:
    @pytest.fixture(scope="class")
    def grid(self):
        return grid_road_network(20, 20, seed=3)

    def test_baseline_batch(self, grid):
        sources = sample_sources(grid, 4, seed=0)
        batch = batch_run(
            grid, sources, lambda g, s: nearfar_sssp(g, s), label="nearfar"
        )
        assert batch.count == 4
        assert batch.iterations().min() > 0
        for s, result in zip(batch.sources, batch.results):
            assert_distances_close(dijkstra(grid, int(s)), result)

    def test_adaptive_batch(self, grid):
        def runner(g, s):
            result, trace, _ = adaptive_sssp(g, s, AdaptiveParams(setpoint=100.0))
            return result, trace

        sources = sample_sources(grid, 3, seed=1)
        batch = batch_run(grid, sources, runner, label="adaptive")
        row = batch.as_row()
        assert row["sources"] == 3
        assert row["pooled median par"] > 0

    def test_empty_sources_rejected(self, grid):
        with pytest.raises(ValueError):
            batch_run(grid, [], lambda g, s: nearfar_sssp(g, s))

    def test_pooled_parallelism_length(self, grid):
        sources = sample_sources(grid, 3, seed=2)
        batch = batch_run(grid, sources, lambda g, s: nearfar_sssp(g, s))
        pooled = pooled_parallelism(batch.traces)
        assert pooled.size == sum(len(t) for t in batch.traces)

    def test_pooled_parallelism_empty(self):
        assert pooled_parallelism([]).size == 0

    def test_summary_statistics(self, grid):
        sources = sample_sources(grid, 3, seed=4)
        batch = batch_run(grid, sources, lambda g, s: nearfar_sssp(g, s))
        s = batch.parallelism_summary()
        assert s.count == pooled_parallelism(batch.traces).size
        assert s.minimum <= s.median <= s.maximum
