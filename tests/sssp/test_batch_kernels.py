"""Unit tests for the batched multi-source near+far engine."""

import numpy as np
import pytest

from repro import obs
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_road_network, path_graph, rmat
from repro.sssp.batch_kernels import BatchedNearFarParams, batched_nearfar_sssp
from repro.sssp.dijkstra import dijkstra
from repro.sssp.nearfar import NearFarParams, nearfar_sssp


class TestExactness:
    def test_matches_dijkstra(self, small_grid):
        sources = [0, 5, 17, 40]
        results = batched_nearfar_sssp(small_grid, sources)
        for src, res in zip(sources, results):
            oracle = dijkstra(small_grid, src)
            assert np.array_equal(res.dist, oracle.dist)

    def test_b1_byte_exact_with_single_source(self, small_grid):
        """B=1 runs the identical float ops in the identical order."""
        for src in (0, 13, 63):
            single, _ = nearfar_sssp(small_grid, src, collect_trace=False)
            [batched] = batched_nearfar_sssp(small_grid, [src])
            assert np.array_equal(single.dist, batched.dist)
            assert single.iterations == batched.iterations
            assert single.relaxations == batched.relaxations

    def test_multi_source_byte_exact_with_loop(self, small_rmat):
        sources = [0, 3, 9, 21, 40]
        looped = [
            nearfar_sssp(small_rmat, s, collect_trace=False)[0] for s in sources
        ]
        batched = batched_nearfar_sssp(small_rmat, sources)
        for single, multi in zip(looped, batched):
            assert np.array_equal(single.dist, multi.dist)
            assert single.iterations == multi.iterations
            assert single.relaxations == multi.relaxations

    def test_duplicate_sources_in_one_batch(self, small_grid):
        """Each query owns a disjoint key range, duplicates included."""
        results = batched_nearfar_sssp(small_grid, [7, 3, 7, 7])
        first, _, third, fourth = results
        assert np.array_equal(first.dist, third.dist)
        assert np.array_equal(first.dist, fourth.dist)
        assert first.iterations == third.iterations == fourth.iterations
        assert first.relaxations == third.relaxations
        oracle = dijkstra(small_grid, 7)
        assert np.array_equal(first.dist, oracle.dist)

    def test_finished_query_amid_active_ones(self):
        """A query that drains early stops contributing keys, silently.

        Source n-1 of a directed path finishes immediately (no
        out-edges); source 0 walks the whole path.  Both must stay
        exact and the early finisher must not age extra iterations.
        """
        graph = path_graph(40)
        last = graph.num_nodes - 1
        results = batched_nearfar_sssp(graph, [0, last, 20])
        for src, res in zip((0, last, 20), results):
            assert np.array_equal(res.dist, dijkstra(graph, src).dist)
        solo = batched_nearfar_sssp(graph, [last])[0]
        assert results[1].iterations == solo.iterations
        assert results[1].relaxations == solo.relaxations == 0

    def test_explicit_delta_matches_single(self, small_grid):
        delta = 3.5
        single, _ = nearfar_sssp(
            small_grid, 2, NearFarParams(delta=delta), collect_trace=False
        )
        [batched] = batched_nearfar_sssp(small_grid, [2], delta=delta)
        assert np.array_equal(single.dist, batched.dist)
        assert batched.extra["delta"] == delta

    def test_per_query_deltas(self, small_grid):
        results = batched_nearfar_sssp(small_grid, [0, 1], delta=[2.0, 9.0])
        assert results[0].extra["delta"] == 2.0
        assert results[1].extra["delta"] == 9.0
        for src, res in zip((0, 1), results):
            assert np.array_equal(res.dist, dijkstra(small_grid, src).dist)

    def test_result_metadata(self, small_grid):
        results = batched_nearfar_sssp(small_grid, [4, 8])
        for res in results:
            assert res.algorithm == "nearfar"
            assert res.extra["batched"] is True
            assert res.extra["batch_size"] == 2


class TestValidation:
    def test_empty_sources_rejected(self, small_grid):
        with pytest.raises(ValueError, match="non-empty"):
            batched_nearfar_sssp(small_grid, [])

    def test_source_out_of_range(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            batched_nearfar_sssp(small_grid, [0, small_grid.num_nodes])

    def test_negative_source(self, small_grid):
        with pytest.raises(ValueError, match="out of range"):
            batched_nearfar_sssp(small_grid, [-1])

    def test_params_and_delta_exclusive(self, small_grid):
        with pytest.raises(ValueError, match="not both"):
            batched_nearfar_sssp(
                small_grid, [0], BatchedNearFarParams(delta=1.0), delta=1.0
            )

    def test_wrong_delta_length(self, small_grid):
        with pytest.raises(ValueError, match="length-2"):
            batched_nearfar_sssp(small_grid, [0, 1], delta=[1.0, 2.0, 3.0])

    def test_nonpositive_delta(self, small_grid):
        with pytest.raises(ValueError, match="finite and positive"):
            batched_nearfar_sssp(small_grid, [0], delta=0.0)

    def test_negative_weights_rejected(self):
        graph = CSRGraph.from_edges(2, src=[0], dst=[1], weight=[-1.0])
        with pytest.raises(ValueError, match="non-negative"):
            batched_nearfar_sssp(graph, [0])

    def test_negative_max_sweeps_rejected(self):
        with pytest.raises(ValueError, match="max_sweeps"):
            BatchedNearFarParams(max_sweeps=-1)

    def test_max_sweeps_truncates(self, small_grid):
        truncated = batched_nearfar_sssp(
            small_grid, [0], BatchedNearFarParams(max_sweeps=1)
        )[0]
        full = batched_nearfar_sssp(small_grid, [0])[0]
        assert truncated.iterations == 1
        assert truncated.relaxations <= full.relaxations


class TestObservability:
    def test_events_and_metrics(self, small_grid):
        reg = obs.MetricsRegistry()
        sink = obs.ListSink()
        with obs.use(registry=reg, events=sink):
            batched_nearfar_sssp(small_grid, [0, 9])
        [start] = sink.of_type("batch_run_start")
        assert start["batch_size"] == 2
        assert start["sources"] == [0, 9]
        [end] = sink.of_type("batch_run_end")
        assert end["sweeps"] > 0
        assert len(end["reached"]) == 2
        snap = reg.snapshot()
        assert snap["sssp.batch.sweeps"]["value"] == end["sweeps"]
        assert snap["sssp.batch.relaxations"]["value"] == end["relaxations"]
        assert snap["sssp.batch.active"]["count"] == end["sweeps"]

    def test_silent_without_context(self, small_grid):
        results = batched_nearfar_sssp(small_grid, [0])
        assert results[0].num_reached > 1
