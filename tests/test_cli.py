"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph.generators import grid_road_network
from repro.graph.io import write_dimacs


@pytest.fixture
def graph_file(tmp_path):
    g = grid_road_network(10, 10, seed=1)
    path = tmp_path / "g.gr"
    write_dimacs(g, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_all_artifact_accepted(self):
        args = build_parser().parse_args(["experiment", "all"])
        assert args.artifact == "all"


class TestExperimentCommand:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.003"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_fig2(self, capsys):
        assert main(["experiment", "fig2", "--scale", "0.003"]) == 0
        assert "delta versus parallelism" in capsys.readouterr().out


class TestSSSPCommand:
    @pytest.mark.parametrize(
        "algo", ["dijkstra", "bellman-ford", "delta-stepping", "nearfar", "kla"]
    )
    def test_algorithms(self, capsys, graph_file, algo):
        assert main(["sssp", graph_file, "--algorithm", algo]) == 0
        out = capsys.readouterr().out
        assert "reached" in out

    def test_adaptive_with_setpoint(self, capsys, graph_file):
        assert (
            main(["sssp", graph_file, "--algorithm", "adaptive", "--setpoint", "50"])
            == 0
        )
        assert "reached" in capsys.readouterr().out

    def test_explicit_source(self, capsys, graph_file):
        assert main(["sssp", graph_file, "--source", "5"]) == 0
        assert "source=5" in capsys.readouterr().out

    def test_simulate_on_device(self, capsys, graph_file):
        assert main(["sssp", graph_file, "--device", "tk1"]) == 0
        assert "simulated on jetson-tk1" in capsys.readouterr().out

    def test_simulate_without_trace(self, capsys, graph_file):
        assert (
            main(["sssp", graph_file, "--algorithm", "dijkstra", "--device", "tk1"])
            == 0
        )
        assert "no trace" in capsys.readouterr().out

    def test_save_trace(self, capsys, graph_file, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["sssp", graph_file, "--save-trace", str(out_path)]) == 0
        assert out_path.exists()
        from repro.instrument.serialize import load_trace

        assert len(load_trace(out_path)) > 0


class TestGenerateAndInfo:
    @pytest.mark.parametrize("ext", ["gr", "mtx", "tsv"])
    def test_generate_roundtrips(self, capsys, tmp_path, ext):
        out = tmp_path / f"cal.{ext}"
        assert main(["generate", "cal", str(out), "--scale", "0.001"]) == 0
        assert out.exists()
        assert main(["info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Nodes" in text

    def test_generate_wiki(self, capsys, tmp_path):
        out = tmp_path / "wiki.tsv"
        assert main(["generate", "wiki", str(out), "--scale", "0.001"]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_info_matches_graph(self, capsys, graph_file):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "100" in out  # 10x10 grid
