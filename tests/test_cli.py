"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph.generators import grid_road_network
from repro.graph.io import write_dimacs


@pytest.fixture
def graph_file(tmp_path):
    g = grid_road_network(10, 10, seed=1)
    path = tmp_path / "g.gr"
    write_dimacs(g, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_all_artifact_accepted(self):
        args = build_parser().parse_args(["experiment", "all"])
        assert args.artifact == "all"


class TestExperimentCommand:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.003"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_fig2(self, capsys):
        assert main(["experiment", "fig2", "--scale", "0.003"]) == 0
        assert "delta versus parallelism" in capsys.readouterr().out


class TestSSSPCommand:
    @pytest.mark.parametrize(
        "algo", ["dijkstra", "bellman-ford", "delta-stepping", "nearfar", "kla"]
    )
    def test_algorithms(self, capsys, graph_file, algo):
        assert main(["sssp", graph_file, "--algorithm", algo]) == 0
        out = capsys.readouterr().out
        assert "reached" in out

    def test_adaptive_with_setpoint(self, capsys, graph_file):
        assert (
            main(["sssp", graph_file, "--algorithm", "adaptive", "--setpoint", "50"])
            == 0
        )
        assert "reached" in capsys.readouterr().out

    def test_explicit_source(self, capsys, graph_file):
        assert main(["sssp", graph_file, "--source", "5"]) == 0
        assert "source=5" in capsys.readouterr().out

    def test_simulate_on_device(self, capsys, graph_file):
        assert main(["sssp", graph_file, "--device", "tk1"]) == 0
        assert "simulated on jetson-tk1" in capsys.readouterr().out

    def test_simulate_without_trace(self, capsys, graph_file):
        assert (
            main(["sssp", graph_file, "--algorithm", "dijkstra", "--device", "tk1"])
            == 0
        )
        assert "no trace" in capsys.readouterr().out

    def test_save_trace(self, capsys, graph_file, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["sssp", graph_file, "--save-trace", str(out_path)]) == 0
        assert out_path.exists()
        from repro.instrument.serialize import load_trace

        assert len(load_trace(out_path)) > 0


class TestGenerateAndInfo:
    @pytest.mark.parametrize("ext", ["gr", "mtx", "tsv"])
    def test_generate_roundtrips(self, capsys, tmp_path, ext):
        out = tmp_path / f"cal.{ext}"
        assert main(["generate", "cal", str(out), "--scale", "0.001"]) == 0
        assert out.exists()
        assert main(["info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Nodes" in text

    def test_generate_wiki(self, capsys, tmp_path):
        out = tmp_path / "wiki.tsv"
        assert main(["generate", "wiki", str(out), "--scale", "0.001"]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_info_matches_graph(self, capsys, graph_file):
        assert main(["info", graph_file]) == 0
        out = capsys.readouterr().out
        assert "100" in out  # 10x10 grid


class TestServeCommand:
    def _requests(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_serves_jsonl_responses(self, capsys, tmp_path):
        import json

        requests = self._requests(
            tmp_path,
            [
                '{"graph": "cal", "source": 0, "algorithm": "dijkstra", "id": "a"}',
                '{"graph": "cal", "source": 0, "algorithm": "dijkstra", "id": "b"}',
                '{"op": "stats"}',
            ],
        )
        assert (
            main(["serve", "--input", requests, "--scale", "0.003", "-q"]) == 0
        )
        out = capsys.readouterr().out
        responses = [json.loads(line) for line in out.splitlines()]
        assert len(responses) == 3
        assert responses[0]["ok"] and responses[0]["cache"] == "miss"
        assert responses[1]["ok"] and responses[1]["cache"] == "hit"
        assert responses[2]["op"] == "stats"
        assert responses[2]["cache"]["hits"] == 1

    def test_bad_lines_answered_not_fatal(self, capsys, tmp_path):
        import json

        requests = self._requests(
            tmp_path,
            ["not json", '{"graph": "cal", "source": 0, "algorithm": "dijkstra"}'],
        )
        assert (
            main(["serve", "--input", requests, "--scale", "0.003", "-q"]) == 0
        )
        first, second = (
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        )
        assert first["ok"] is False
        assert second["ok"] is True

    def test_graph_file_registration(self, capsys, tmp_path, graph_file):
        import json

        requests = self._requests(
            tmp_path, ['{"graph": "mine", "source": 0, "algorithm": "dijkstra"}']
        )
        assert (
            main(
                [
                    "serve",
                    "--input",
                    requests,
                    "--graph-file",
                    f"mine={graph_file}",
                    "--scale",
                    "0.003",
                    "-q",
                ]
            )
            == 0
        )
        (response,) = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert response["ok"] is True
        assert response["graph"] == "mine"

    def test_metrics_and_events_artifacts(self, capsys, tmp_path):
        import json

        requests = self._requests(
            tmp_path, ['{"graph": "cal", "source": 0, "algorithm": "dijkstra"}']
        )
        metrics_path = tmp_path / "serve.metrics.json"
        events_path = tmp_path / "serve.events.jsonl"
        assert (
            main(
                [
                    "serve",
                    "--input",
                    requests,
                    "--scale",
                    "0.003",
                    "--metrics",
                    str(metrics_path),
                    "--events",
                    str(events_path),
                    "-q",
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(metrics_path.read_text())
        assert payload["stats"]["queries"] == 1
        assert payload["metrics"]["service.queries"]["value"] == 1
        events = [
            json.loads(line) for line in events_path.read_text().splitlines()
        ]
        # v4 serving telemetry: lifecycle events plus span events (the
        # query's worker/task, worker/task/kernel, engine/query,
        # protocol chain), all sharing the line's trace id
        types = [e["type"] for e in events]
        assert types[0] == "query_start"
        assert "query_end" in types
        span_names = {e["name"] for e in events if e["type"] == "span"}
        assert {"worker/task", "engine/query", "protocol"} <= span_names
        traces = {e.get("trace") for e in events}
        assert len(traces) == 1 and None not in traces

    def test_bad_graph_file_spec(self, tmp_path):
        requests = self._requests(tmp_path, ['{"op": "stats"}'])
        with pytest.raises(SystemExit):
            main(["serve", "--input", requests, "--graph-file", "nopath"])


class TestQueryCommand:
    def test_one_shot_query(self, capsys):
        import json

        assert (
            main(
                [
                    "query",
                    "cal",
                    "--scale",
                    "0.003",
                    "--algorithm",
                    "dijkstra",
                    "--source",
                    "0",
                ]
            )
            == 0
        )
        (response,) = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert response["ok"] is True
        assert response["graph"] == "cal"
        assert response["source"] == 0

    def test_repeat_hits_cache(self, capsys):
        import json

        assert (
            main(
                [
                    "query",
                    "cal",
                    "--scale",
                    "0.003",
                    "--algorithm",
                    "dijkstra",
                    "--repeat",
                    "2",
                ]
            )
            == 0
        )
        first, second = (
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        )
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert second["reached"] == first["reached"]

    def test_default_source_is_hub(self, capsys):
        import json

        assert main(["query", "cal", "--scale", "0.003", "--algorithm", "dijkstra"]) == 0
        (response,) = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert response["ok"] is True

    def test_unknown_graph_exits(self):
        with pytest.raises(SystemExit):
            main(["query", "no-such-graph", "--scale", "0.003"])


class TestFaultsCommand:
    def test_drill_passes_and_reports(self, capsys):
        rc = main(
            [
                "faults",
                "--queries",
                "8",
                "--scale",
                "0.003",
                "--fault-rate",
                "0.4",
                "--retries",
                "6",
                "-q",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "answered 8/8 queries" in out
        assert "all verified against Dijkstra" in out

    def test_drill_without_verification(self, capsys):
        rc = main(
            [
                "faults",
                "--queries",
                "4",
                "--scale",
                "0.003",
                "--no-verify",
                "-q",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "answered 4/4 queries" in out
        assert "Dijkstra" not in out

    def test_serve_accepts_resilience_flags(self, capsys, tmp_path):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"graph": "cal", "source": 0, "algorithm": "dijkstra"}\n'
            '{"op": "health"}\n'
        )
        rc = main(
            [
                "serve",
                "--input",
                str(requests),
                "--scale",
                "0.003",
                "--fault-rate",
                "0.5",
                "--fault-kinds",
                "transient,crash",
                "--retries",
                "6",
                "-q",
            ]
        )
        assert rc == 0
        query, health = (
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        )
        assert query["ok"] is True
        assert health["op"] == "health"
        assert health["pool"]["alive"] is True


class TestVersionCommand:
    def test_version(self, capsys):
        from repro import __version__

        assert main(["version"]) == 0
        assert __version__ in capsys.readouterr().out

    def test_version_verbose(self, capsys):
        assert main(["version", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "python" in out and "numpy" in out


class TestVerbosityFlags:
    def test_quiet_suppresses_chatter(self, capsys, graph_file):
        assert main(["sssp", graph_file, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "CSRGraph" not in out
        assert "reached" in out  # the result itself still prints

    def test_quiet_before_subcommand(self, capsys, graph_file):
        assert main(["--quiet", "sssp", graph_file]) == 0
        assert "CSRGraph" not in capsys.readouterr().out

    def test_verbose_prints_metrics(self, capsys, graph_file):
        assert main(["sssp", graph_file, "--algorithm", "nearfar", "-v"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "sssp.relaxations" in out

    def test_default_is_neither(self, capsys, graph_file):
        assert main(["sssp", graph_file, "--algorithm", "nearfar"]) == 0
        out = capsys.readouterr().out
        assert "CSRGraph" in out
        assert "metrics:" not in out


class TestTraceCommand:
    def test_record_produces_all_artifacts(self, capsys, graph_file, tmp_path):
        import json

        base = tmp_path / "run"
        assert (
            main(
                ["trace", "record", graph_file, "--setpoint", "50", "-o", str(base)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reached" in out
        trace_path = tmp_path / "run.trace.json"
        events_path = tmp_path / "run.events.jsonl"
        metrics_path = tmp_path / "run.metrics.json"
        assert trace_path.exists() and events_path.exists() and metrics_path.exists()

        lines = events_path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert events[0]["type"] == "run_start"
        assert events[-1]["type"] == "run_end"
        assert any(e["type"] == "iteration" for e in events)

        metrics = json.loads(metrics_path.read_text())
        assert metrics["metrics"]["sssp.iterations"]["value"] > 0
        assert metrics["wall_seconds"] > 0
        assert any(s["path"] == "run" for s in metrics["spans"])

    def test_record_nearfar(self, capsys, graph_file, tmp_path):
        base = tmp_path / "nf"
        assert (
            main(
                ["trace", "record", graph_file, "--algorithm", "nearfar", "-o", str(base)]
            )
            == 0
        )
        assert (tmp_path / "nf.trace.json").exists()

    def test_show(self, capsys, graph_file, tmp_path):
        base = tmp_path / "run"
        main(["-q", "trace", "record", graph_file, "--setpoint", "50", "-o", str(base)])
        capsys.readouterr()
        assert main(["trace", "show", str(tmp_path / "run.trace.json")]) == 0
        out = capsys.readouterr().out
        assert "iterations" in out
        assert "par mean" in out

    def test_diff_reports_deltas(self, capsys, graph_file, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        main(["-q", "trace", "record", graph_file, "--setpoint", "50", "-o", str(a)])
        main(
            ["-q", "trace", "record", graph_file, "--algorithm", "nearfar", "-o", str(b)]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "trace",
                    "diff",
                    str(tmp_path / "a.trace.json"),
                    str(tmp_path / "b.trace.json"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "b - a" in out
        assert "iterations" in out
        assert "par cv" in out
        assert "d settle" in out

    def test_diff_accepts_save_trace_output(self, capsys, graph_file, tmp_path):
        """Traces saved by `sssp --save-trace` diff against recorded ones."""
        t1 = tmp_path / "t1.json"
        main(["-q", "sssp", graph_file, "--save-trace", str(t1)])
        base = tmp_path / "r"
        main(["-q", "trace", "record", graph_file, "--setpoint", "50", "-o", str(base)])
        capsys.readouterr()
        assert (
            main(["trace", "diff", str(t1), str(tmp_path / "r.trace.json")]) == 0
        )
        assert "iterations" in capsys.readouterr().out


class TestMetricsAndTopCommands:
    """The v4 observability surface: metrics exposition and repro top."""

    def _served_metrics(self, tmp_path, capsys, events=False):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                f'{{"graph": "cal", "source": {s}, "algorithm": "nearfar"}}'
                for s in range(3)
            )
            + "\n"
        )
        metrics_path = tmp_path / "serve.metrics.json"
        argv = [
            "-q", "serve", "--input", str(requests), "--scale", "0.003",
            "--metrics", str(metrics_path),
        ]
        if events:
            argv += ["--events", str(tmp_path / "serve.events.jsonl")]
        assert main(argv) == 0
        capsys.readouterr()
        return metrics_path

    def test_metrics_human_summary(self, capsys, tmp_path):
        path = self._served_metrics(tmp_path, capsys)
        assert main(["metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "service.query.latency" in out
        assert "p50=" in out and "p99=" in out

    def test_metrics_prometheus_exposition(self, capsys, tmp_path):
        path = self._served_metrics(tmp_path, capsys)
        assert main(["metrics", str(path), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_query_latency histogram" in out
        assert 'le="+Inf"' in out
        assert "repro_service_queries_total 3" in out

    def test_metrics_missing_file_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["metrics", str(tmp_path / "absent.json")])

    def test_top_once_renders_dashboard(self, capsys, tmp_path):
        path = self._served_metrics(tmp_path, capsys)
        assert main(["top", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "queries" in out
        assert "p99" in out
        assert "cal" in out and "nearfar" in out

    def test_top_once_waits_out_missing_file(self, capsys, tmp_path):
        assert main(["top", str(tmp_path / "absent.json"), "--once"]) == 0
        out = capsys.readouterr().out
        assert "waiting" in out

    def test_trace_show_renders_event_log(self, capsys, tmp_path):
        self._served_metrics(tmp_path, capsys, events=True)
        events_path = tmp_path / "serve.events.jsonl"
        assert events_path.exists()
        assert main(["trace", "show", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "query_start" in out
        assert "query_end" in out
        assert "span" in out

    def test_trace_show_renders_batch_events(self, capsys, tmp_path):
        """Satellite 2: batch_dispatch / batch_run_* render, round-tripped
        through a real serve session that coalesced a sources batch."""
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"graph": "cal", "sources": [0, 5, 9], "algorithm": "nearfar"}\n'
        )
        events_path = tmp_path / "serve.events.jsonl"
        assert (
            main(
                [
                    "-q", "serve", "--input", str(requests),
                    "--scale", "0.003", "--max-batch", "8",
                    "--events", str(events_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        recorded = [
            json.loads(line) for line in events_path.read_text().splitlines()
        ]
        types = {e["type"] for e in recorded}
        assert {"batch_dispatch", "batch_run_start", "batch_run_end"} <= types
        assert main(["trace", "show", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "batch_dispatch" in out
        assert "batch=3" in out or "batch_size=3" in out or "size=3" in out
        assert "batch_run_start" in out and "batch_run_end" in out


class TestNetServeAndLoadgen:
    """serve --shards / --listen plumbing and the loadgen command."""

    def _requests(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text(
            "\n".join(
                f'{{"graph": "cal", "source": {s}, "algorithm": "dijkstra"}}'
                for s in range(3)
            )
            + "\n"
        )
        return str(path)

    def test_sharded_stdin_serve_matches_single_engine(self, capsys, tmp_path):
        import json

        requests = self._requests(tmp_path)
        assert (
            main(["serve", "--input", requests, "--scale", "0.003", "-q"]) == 0
        )
        single = capsys.readouterr().out
        assert (
            main(
                [
                    "serve", "--input", requests, "--scale", "0.003",
                    "--shards", "2", "-q",
                ]
            )
            == 0
        )
        sharded = capsys.readouterr().out

        def strip(text):
            rows = [json.loads(line) for line in text.splitlines()]
            return [
                {
                    k: v
                    for k, v in row.items()
                    if k not in ("wall_seconds", "trace")
                }
                for row in rows
            ]

        assert strip(sharded) == strip(single)

    def test_sharded_serve_metrics_carry_shard_labels(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "serve", "--input", self._requests(tmp_path),
                    "--scale", "0.003", "--shards", "2",
                    "--metrics", str(metrics_path), "-q",
                ]
            )
            == 0
        )
        capsys.readouterr()
        data = json.loads(metrics_path.read_text())
        latency_keys = [
            k for k in data["metrics"] if k.startswith("service.query.latency")
        ]
        assert latency_keys and all('shard="' in k for k in latency_keys)
        # and repro top renders the per-shard table for that file
        assert main(["top", str(metrics_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "shard" in out

    def test_serve_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve", "--input", self._requests(tmp_path),
                    "--shards", "0", "-q",
                ]
            )

    def test_loadgen_validates_arguments(self):
        with pytest.raises(SystemExit):
            main(["loadgen", "127.0.0.1:1", "--connections", "0"])
        with pytest.raises(SystemExit):
            main(["loadgen", "127.0.0.1:1", "--duration", "0"])
        with pytest.raises(SystemExit):
            main(["loadgen", "127.0.0.1:1", "--batch", "0"])

    def test_loadgen_reports_unreachable_target(self):
        # port 1 is never listening in the test environment
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["loadgen", "127.0.0.1:1", "--duration", "0.2"])

    def test_chaos_net_drill_passes_and_writes_metrics(
        self, tmp_path, capsys
    ):
        import json

        metrics_path = tmp_path / "chaos.json"
        assert (
            main(
                [
                    "chaos-net", "--scale", "0.003",
                    "--connections", "2", "--duration", "0.8",
                    "--stall-ms", "300",
                    "--metrics", str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "chaos-net: PASS" in out
        assert "0 hung" in out
        assert "Dijkstra mismatches" in out
        saved = json.loads(metrics_path.read_text())
        assert saved["chaos"]["ok"] is True
        assert saved["chaos"]["restarts"] >= 1
        assert saved["metrics"]["bench.net.recovery_ms"]["value"] >= 0
        assert saved["metrics"]["bench.net.hung"]["value"] == 0

    def test_chaos_net_adopt_failover(self, capsys):
        assert (
            main(
                [
                    "chaos-net", "--scale", "0.003",
                    "--connections", "2", "--duration", "0.8",
                    "--stall-ms", "300", "--failover", "adopt",
                ]
            )
            == 0
        )
        assert "chaos-net: PASS" in capsys.readouterr().out

    def test_chaos_net_validates_arguments(self):
        with pytest.raises(SystemExit, match="--shards"):
            main(["chaos-net", "--shards", "0"])
        with pytest.raises(SystemExit, match="--crash-shard"):
            main(["chaos-net", "--shards", "2", "--crash-shard", "5"])
        with pytest.raises(SystemExit, match="--duration"):
            main(["chaos-net", "--duration", "0"])
        with pytest.raises(SystemExit):
            main(["chaos-net", "--fault-kind", "meteor"])

    def test_process_mode_stdin_serve_matches_thread_mode(
        self, capsys, tmp_path
    ):
        """Satellite: --shard-mode process answers byte-match thread mode."""
        import json

        requests = self._requests(tmp_path)
        base = ["serve", "--input", requests, "--scale", "0.003",
                "--shards", "2", "-q"]
        assert main(base) == 0
        threaded = capsys.readouterr().out
        assert main(base + ["--shard-mode", "process"]) == 0
        process = capsys.readouterr().out

        def strip(text):
            return [
                {
                    k: v
                    for k, v in json.loads(line).items()
                    if k not in ("wall_seconds", "trace")
                }
                for line in text.splitlines()
            ]

        assert strip(process) == strip(threaded)

    def test_chaos_net_rejects_worker_kinds_in_thread_mode(self):
        for kind in ("worker_kill", "worker_oom", "frame_corrupt"):
            with pytest.raises(SystemExit, match="process"):
                main(["chaos-net", "--fault-kind", kind])

    def test_chaos_net_process_mode_gates_recovery_metric(
        self, tmp_path, capsys
    ):
        import json

        metrics_path = tmp_path / "chaos-process.json"
        assert (
            main(
                [
                    "chaos-net", "--scale", "0.003",
                    "--shard-mode", "process",
                    "--fault-kind", "worker_kill",
                    "--connections", "2", "--duration", "0.8",
                    "--stall-ms", "300", "--heartbeat-ms", "150",
                    "--metrics", str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "chaos-net: PASS" in out
        assert "process shards" in out
        saved = json.loads(metrics_path.read_text())
        assert saved["chaos"]["ok"] is True
        assert saved["chaos"]["shard_mode"] == "process"
        assert saved["chaos"]["restarts"] >= 1
        assert saved["metrics"]["bench.net.process_recovery_ms"]["value"] >= 0

    def test_shard_worker_requires_connection_arguments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard-worker"])
        args = build_parser().parse_args(
            [
                "shard-worker", "--connect", "127.0.0.1:9999",
                "--shard", "3", "--token", "cafe",
            ]
        )
        assert args.shard == 3 and args.token == "cafe"

    def test_listen_serve_loadgen_roundtrip(self, tmp_path, capsys):
        """End to end over a real socket: serve --listen + loadgen."""
        import json
        import socket
        import subprocess
        import sys as _sys
        import time as _time

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        proc = subprocess.Popen(
            [
                _sys.executable, "-m", "repro", "serve",
                "--listen", f"127.0.0.1:{port}", "--scale", "0.003",
                "--workers", "2", "-q",
            ],
            stderr=subprocess.PIPE,
        )
        try:
            deadline = _time.time() + 30
            while _time.time() < deadline:
                try:
                    socket.create_connection(("127.0.0.1", port), 0.5).close()
                    break
                except OSError:
                    if proc.poll() is not None:
                        raise AssertionError(
                            proc.stderr.read().decode(errors="replace")
                        )
                    _time.sleep(0.2)
            else:
                raise AssertionError("serve --listen never came up")
            metrics_path = tmp_path / "loadgen.json"
            assert (
                main(
                    [
                        "loadgen", f"127.0.0.1:{port}",
                        "--connections", "2", "--duration", "0.5",
                        "--metrics", str(metrics_path),
                    ]
                )
                == 0
            )
            summary = json.loads(capsys.readouterr().out)
            assert summary["sent"] > 0 and summary["errors"] == 0
            saved = json.loads(metrics_path.read_text())
            assert saved["metrics"]["bench.net.qps"]["value"] > 0
        finally:
            proc.terminate()
            proc.wait(timeout=10)
