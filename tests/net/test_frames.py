"""Frame codec: framing, CRC rejection, resync, timeout semantics."""

from __future__ import annotations

import socket

import pytest

from repro.net.frames import (
    FT_ERROR,
    FT_HEARTBEAT,
    FT_REQUEST,
    FT_RESPONSE,
    MAX_FRAME_BYTES,
    FrameCorruptError,
    FrameError,
    FrameTooLarge,
    encode_frame,
    frame_crc,
    recv_frame,
    send_frame,
)
from repro.net.frames import _HEADER as HEADER


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_round_trip_preserves_type_corr_payload(pair):
    a, b = pair
    payload = b'{"queries": [1, 2, 3]}'
    send_frame(a, FT_REQUEST, 42, payload)
    ft, corr, got = recv_frame(b)
    assert (ft, corr, got) == (FT_REQUEST, 42, payload)


def test_empty_payload_round_trips(pair):
    a, b = pair
    send_frame(a, FT_HEARTBEAT, 7, b"")
    assert recv_frame(b) == (FT_HEARTBEAT, 7, b"")


def test_crc_covers_header_fields_not_just_payload():
    # same payload, different corr -> different CRC (a frame cannot be
    # replayed under another correlation id without detection)
    assert frame_crc(FT_REQUEST, 1, b"x") != frame_crc(FT_REQUEST, 2, b"x")
    assert frame_crc(FT_REQUEST, 1, b"x") != frame_crc(FT_RESPONSE, 1, b"x")


def test_corrupt_payload_raises_with_corr_preserved(pair):
    a, b = pair
    frame = bytearray(encode_frame(FT_RESPONSE, 99, b"payload-bytes"))
    frame[-1] ^= 0xFF
    a.sendall(frame)
    with pytest.raises(FrameCorruptError) as exc_info:
        recv_frame(b)
    assert exc_info.value.corr == 99
    assert exc_info.value.frame_type == FT_RESPONSE


def test_stream_resyncs_after_corrupt_frame(pair):
    # the length prefix of a corrupt frame is honest, so the next
    # frame decodes cleanly: corruption is per-frame, not per-stream
    a, b = pair
    bad = bytearray(encode_frame(FT_REQUEST, 1, b"garbled"))
    bad[-3] ^= 0x01
    a.sendall(bad)
    send_frame(a, FT_REQUEST, 2, b"clean")
    with pytest.raises(FrameCorruptError):
        recv_frame(b)
    assert recv_frame(b) == (FT_REQUEST, 2, b"clean")


def test_oversize_frame_rejected_before_allocation(pair):
    a, b = pair
    header = HEADER.pack(MAX_FRAME_BYTES + 1, FT_REQUEST, 5, 0)
    a.sendall(header)
    with pytest.raises(FrameTooLarge):
        recv_frame(b)


def test_encode_rejects_oversize_payload():
    with pytest.raises(FrameTooLarge):
        encode_frame(FT_REQUEST, 1, b"\x00" * (MAX_FRAME_BYTES + 1))


def test_idle_timeout_propagates_as_socket_timeout(pair):
    a, b = pair
    with pytest.raises(socket.timeout):
        recv_frame(b, idle_timeout=0.05)


def test_mid_frame_timeout_is_fatal_frame_error(pair):
    # half a header then silence: the stream can never resync, so the
    # reader must not surface this as a benign idle tick
    a, b = pair
    a.sendall(HEADER.pack(10, FT_REQUEST, 3, 0)[:8])
    with pytest.raises(FrameError):
        recv_frame(b, idle_timeout=0.05, frame_timeout=0.1)


def test_eof_raises_eoferror(pair):
    a, b = pair
    a.close()
    with pytest.raises(EOFError):
        recv_frame(b)


def test_eof_mid_frame_raises_eoferror(pair):
    a, b = pair
    frame = encode_frame(FT_ERROR, 4, b"partial")
    a.sendall(frame[: len(frame) - 3])
    a.close()
    with pytest.raises(EOFError):
        recv_frame(b)


def test_header_layout_is_stable():
    # wire contract: u32 len | u8 type | u64 corr | u32 crc, network order
    assert HEADER.size == 17
    payload = b"abc"
    frame = encode_frame(FT_REQUEST, 0x1122334455667788, payload)
    length, ftype, corr, crc = HEADER.unpack(frame[: HEADER.size])
    assert length == len(payload)
    assert ftype == FT_REQUEST
    assert corr == 0x1122334455667788
    assert crc == frame_crc(FT_REQUEST, corr, payload)
    assert frame[HEADER.size:] == payload
