"""AdmissionController: token bound, deadline gate, breaker, metrics."""

from __future__ import annotations

import time

import pytest

from repro.net.admission import OVERLOADED_PREFIX, AdmissionController
from repro.resilience.breaker import BreakerConfig


def test_admits_within_the_token_bound():
    adm = AdmissionController(max_inflight=3)
    assert adm.try_acquire(0, 2) is None
    assert adm.try_acquire(0, 1) is None
    assert adm.inflight(0) == 3


def test_sheds_past_the_token_bound_with_a_reason():
    adm = AdmissionController(max_inflight=2)
    assert adm.try_acquire(0, 2) is None
    reason = adm.try_acquire(0, 1)
    assert reason is not None and reason.startswith(OVERLOADED_PREFIX)
    assert "2/2" in reason
    assert adm.shed == 1 and adm.admitted == 2


def test_release_returns_tokens():
    adm = AdmissionController(max_inflight=1)
    assert adm.try_acquire(0) is None
    assert adm.try_acquire(0) is not None
    adm.release(0, 1, 0.01)
    assert adm.try_acquire(0) is None


def test_shards_have_independent_budgets():
    adm = AdmissionController(max_inflight=1)
    assert adm.try_acquire(0) is None
    assert adm.try_acquire(1) is None  # shard 1 unaffected by shard 0
    assert adm.try_acquire(0) is not None


def test_max_inflight_zero_sheds_everything():
    adm = AdmissionController(max_inflight=0)
    assert adm.try_acquire(0) is not None
    assert adm.admitted == 0


def test_deadline_gate_uses_predicted_wait():
    adm = AdmissionController(max_inflight=100, deadline_seconds=0.5)
    # seed the EWMA at 1s/query via a release
    assert adm.try_acquire(0, 2) is None
    adm.release(0, 2, 2.0)
    # empty shard: predicted wait 0, always admitted
    assert adm.try_acquire(0, 1) is None
    # one in flight x 1s EWMA > 0.5s budget -> shed
    reason = adm.try_acquire(0, 1)
    assert reason is not None and "deadline" in reason


def test_sustained_shedding_opens_the_breaker():
    adm = AdmissionController(
        max_inflight=0,
        breaker=BreakerConfig(failure_threshold=5, reset_seconds=60.0),
    )
    reasons = [adm.try_acquire(0) for _ in range(8)]
    assert all(r.startswith(OVERLOADED_PREFIX) for r in reasons)
    assert "breaker open" in adm.try_acquire(0)


def test_an_admission_closes_the_breaker_again():
    adm = AdmissionController(
        max_inflight=2,
        breaker=BreakerConfig(failure_threshold=3, reset_seconds=0.01),
    )
    assert adm.try_acquire(0, 2) is None
    for _ in range(4):
        adm.try_acquire(0, 1)  # sheds; opens the breaker
    adm.release(0, 2, 0.01)
    time.sleep(0.05)  # past reset_seconds: the breaker half-opens
    assert adm.try_acquire(0, 1) is None  # the probe finds tokens
    assert adm.try_acquire(0, 1) is None  # breaker closed, tokens remain


def test_register_shard_precreates_zeroed_metrics(registry):
    adm = AdmissionController(max_inflight=4)
    adm.register_shard(0)
    snap = registry.snapshot()
    assert snap['net.inflight{shard="0"}']["value"] == 0
    assert snap['net.shed{shard="0"}']["value"] == 0


def test_shed_counter_and_inflight_gauge_track(registry):
    adm = AdmissionController(max_inflight=1)
    adm.register_shard(0)
    adm.try_acquire(0)
    adm.try_acquire(0)  # shed
    snap = registry.snapshot()
    assert snap['net.inflight{shard="0"}']["value"] == 1
    assert snap['net.shed{shard="0"}']["value"] == 1


def test_snapshot_is_json_ready():
    adm = AdmissionController(max_inflight=2, deadline_seconds=1.5)
    adm.try_acquire(0)
    adm.try_acquire(0, 2)  # shed
    adm.release(0, 1, 0.25)
    snap = adm.snapshot()
    assert snap["max_inflight"] == 2
    assert snap["deadline_seconds"] == 1.5
    assert snap["admitted"] == 1 and snap["shed"] == 2
    assert snap["inflight"] == {"0": 0}
    assert snap["ewma_query_seconds"]["0"] == pytest.approx(0.25)


def test_stalled_shard_deadline_budget_fake_clock():
    """Satellite: the EWMA deadline gate under a stalled shard, no sleeps.

    A stuck query plus a 1s/query latency estimate sheds everything by
    prediction; sustained shedding opens the breaker; time alone does
    not heal it (the half-open probe still hits the deadline gate); a
    supervisor-style restart — pending failed out, ``reset_shard`` —
    does.  The whole arc runs on a fake clock.
    """
    now = [0.0]
    adm = AdmissionController(
        max_inflight=100,
        deadline_seconds=0.1,
        breaker=BreakerConfig(failure_threshold=2, reset_seconds=5.0),
        clock=lambda: now[0],
    )
    # teach the gate this shard runs ~1s/query
    assert adm.try_acquire(0) is None
    adm.release(0, 1, 1.0)
    # one query wedged in the stalled dispatcher
    assert adm.try_acquire(0) is None
    # predicted wait 1 x 1.0s >> 0.1s budget: shed by prediction
    r1, r2 = adm.try_acquire(0), adm.try_acquire(0)
    assert "deadline" in r1 and "deadline" in r2
    # two consecutive sheds tripped the breaker
    assert "breaker open" in adm.try_acquire(0)
    # past reset_seconds the half-open probe is *still* shed (the shard
    # is still stalled), so the breaker reopens
    now[0] += 6.0
    assert "deadline" in adm.try_acquire(0)
    assert "breaker open" in adm.try_acquire(0)
    # the supervisor replaces the dispatcher: the wedged query is failed
    # out (tokens returned) and the stale estimate is forgotten
    adm.release(0, 1, 0.0)
    adm.reset_shard(0)
    now[0] += 6.0
    assert adm.try_acquire(0) is None  # probe admitted: breaker closes
    assert adm.try_acquire(0) is None  # fresh EWMA: the gate is quiet
    adm.release(0, 2, 0.002)
    assert adm.snapshot()["ewma_query_seconds"]["0"] < 0.1


def test_record_unavailable_counts_separately_and_skips_breaker(registry):
    adm = AdmissionController(
        max_inflight=4,
        breaker=BreakerConfig(failure_threshold=1, reset_seconds=60.0),
    )
    adm.record_unavailable(0, 3, "unavailable: shard 0 is dead")
    assert adm.unavailable == 3 and adm.shed == 0
    # unavailability never feeds the admission breaker
    assert adm.try_acquire(0) is None
    snap = registry.snapshot()
    assert snap['net.unavailable{shard="0"}']["value"] == 3
    assert adm.snapshot()["unavailable"] == 3


def test_reset_shard_forgets_the_latency_estimate():
    adm = AdmissionController(max_inflight=8, deadline_seconds=0.5)
    assert adm.try_acquire(0) is None
    adm.release(0, 1, 10.0)
    assert adm.try_acquire(0) is None  # empty shard: predicted 0
    assert adm.try_acquire(0) is not None  # 1 x 10s >> 0.5s
    adm.reset_shard(0)
    assert adm.try_acquire(0) is None
    assert "0" not in adm.snapshot()["ewma_query_seconds"]


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=-1)
    with pytest.raises(ValueError):
        AdmissionController(deadline_seconds=0.0)
