"""ShardManager: routing, engine-facade parity, admission wiring."""

from __future__ import annotations

import pytest

from repro.net import AdmissionController, ShardDiedError, ShardManager
from repro.resilience import ScheduledFaultPlan
from repro.service import GraphCatalog, QueryEngine, SSSPQuery, handle_line


@pytest.fixture
def manager(catalog):
    mgr = ShardManager(catalog, shards=2, max_workers=2)
    yield mgr
    mgr.close()


def test_assignment_is_deterministic_round_robin(manager):
    # sorted names: alpha -> shard 0, beta -> shard 1
    assert manager.shard_of("alpha") == 0
    assert manager.shard_of("beta") == 1
    assert manager.shard_of("nope") is None
    assert manager.graph_ids == ["alpha", "beta"]


def test_shard_count_clamps_to_graph_count(catalog):
    mgr = ShardManager(catalog, shards=8, max_workers=1)
    try:
        assert len(mgr.shards) == 2
    finally:
        mgr.close()


def test_empty_catalog_rejected():
    with pytest.raises(ValueError):
        ShardManager(GraphCatalog(), shards=1)


def test_routes_each_graph_to_its_owner(manager):
    ra = manager.run(SSSPQuery(graph_id="alpha", source=0))
    rb = manager.run(SSSPQuery(graph_id="beta", source=0))
    assert ra.ok and rb.ok
    stats = manager.stats()
    assert stats["shards"][0]["graphs"] == ["alpha"]
    assert stats["shards"][1]["graphs"] == ["beta"]
    assert stats["shards"][0]["dispatched"] == 1
    assert stats["shards"][1]["dispatched"] == 1


def test_run_many_preserves_request_order(manager):
    queries = [
        SSSPQuery(graph_id="beta", source=1),
        SSSPQuery(graph_id="alpha", source=2),
        SSSPQuery(graph_id="nope", source=0),
        SSSPQuery(graph_id="alpha", source=3),
    ]
    responses = manager.run_many(queries)
    assert [r.query.graph_id for r in responses] == [
        "beta", "alpha", "nope", "alpha",
    ]
    assert responses[0].ok and responses[1].ok and responses[3].ok
    assert not responses[2].ok


def test_unknown_graph_error_matches_single_engine(catalog, grids):
    mgr = ShardManager(catalog, shards=2, max_workers=1)
    single_cat = GraphCatalog()
    for name, graph in grids.items():
        single_cat.register(name, graph)
    engine = QueryEngine(single_cat, max_workers=1)
    try:
        q = SSSPQuery(graph_id="missing", source=0)
        assert mgr.run(q).error == engine.run(q).error
    finally:
        mgr.close()
        engine.close()


def test_protocol_responses_match_single_engine(catalog, grids):
    """The acceptance bar: socket-mode answers byte-match stdin-mode."""
    import json

    mgr = ShardManager(catalog, shards=2, max_workers=1)
    single_cat = GraphCatalog()
    for name, graph in grids.items():
        single_cat.register(name, graph)
    engine = QueryEngine(single_cat, max_workers=1)

    def strip(d):
        if not isinstance(d, dict):
            return d
        d = {k: v for k, v in d.items() if k not in ("wall_seconds", "trace")}
        if "results" in d:
            d["results"] = [strip(x) for x in d["results"]]
        return d

    try:
        for line in [
            '{"op": "query", "graph": "alpha", "source": 0}',
            '{"op": "query", "graph": "beta", "sources": [0, 1, 2]}',
            '{"op": "query", "graph": "nope", "source": 0, "id": "x"}',
            '{"op": "graphs"}',
            "not json",
            '{"op": "wat"}',
        ]:
            sharded = strip(handle_line(mgr, line))
            direct = strip(handle_line(engine, line))
            assert json.dumps(sharded, sort_keys=True) == json.dumps(
                direct, sort_keys=True
            ), line
    finally:
        mgr.close()
        engine.close()


def test_dispatcher_merges_queued_work(catalog):
    mgr = ShardManager(catalog, shards=1, max_workers=1, cache_size=0)
    try:
        futures = [
            mgr.submit_many([SSSPQuery(graph_id="alpha", source=i)])
            for i in range(12)
        ]
        for f in futures:
            assert f.result()[0].ok
        shard = mgr.shards[0]
        # 12 submissions cannot all have run in their own cycle: the
        # dispatcher drains whatever queued behind the running batch
        assert shard.dispatched == 12
        assert shard.cycles < 12
    finally:
        mgr.close()


def test_admission_sheds_overload_and_recovers(catalog):
    adm = AdmissionController(max_inflight=2)
    mgr = ShardManager(catalog, shards=1, admission=adm, max_workers=1)
    try:
        futures = [
            mgr.submit_many([SSSPQuery(graph_id="alpha", source=i)])
            for i in range(30)
        ]
        responses = [f.result()[0] for f in futures]
        shed = [r for r in responses if not r.ok]
        assert shed and all(r.error.startswith("overloaded") for r in shed)
        assert adm.shed == len(shed)
        # load gone: tokens are back, a fresh query is admitted
        assert mgr.run(SSSPQuery(graph_id="alpha", source=99)).ok
        assert adm.inflight(0) == 0
    finally:
        mgr.close()


def test_stats_and_health_aggregate_across_shards(manager):
    manager.run(SSSPQuery(graph_id="alpha", source=0))
    manager.run(SSSPQuery(graph_id="beta", source=0))
    stats = manager.stats()
    assert stats["queries"] == 2
    assert stats["assignment"] == {"alpha": 0, "beta": 1}
    assert stats["pool"]["max_workers"] == 4  # 2 shards x 2 workers
    health = manager.health()
    assert health["pool"]["alive"] is True
    assert health["breakers_open"] == 0
    assert len(health["shards"]) == 2


def test_per_shard_latency_labels(registry, catalog):
    mgr = ShardManager(catalog, shards=2, max_workers=1)
    try:
        mgr.run(SSSPQuery(graph_id="alpha", source=0))
        mgr.run(SSSPQuery(graph_id="beta", source=0))
    finally:
        mgr.close()
    keys = [k for k in registry.snapshot() if k.startswith("service.query.latency")]
    assert any('shard="0"' in k for k in keys)
    assert any('shard="1"' in k for k in keys)


def test_engine_crash_fails_only_that_group(manager):
    manager.shards[0].engine.run_many = _boom  # type: ignore[method-assign]
    bad = manager.run(SSSPQuery(graph_id="alpha", source=0))
    good = manager.run(SSSPQuery(graph_id="beta", source=0))
    assert not bad.ok and "internal error" in bad.error
    assert good.ok


def test_dispatcher_death_fails_pending_futures(catalog):
    """Satellite: a dying dispatch loop fails its queue, never strands it."""
    mgr = ShardManager(
        catalog,
        shards=1,
        max_workers=1,
        net_fault_plan=ScheduledFaultPlan(at=(0,), kind="shard_crash"),
    )
    try:
        fut = mgr.shards[0].submit([SSSPQuery(graph_id="alpha", source=0)])
        with pytest.raises(ShardDiedError):
            fut.result(timeout=5)
        shard = mgr.shards[0]
        assert shard.alive is False
        assert "InjectedShardCrash" in shard.exit_reason
        snap = shard.dispatcher_snapshot()
        assert snap["alive"] is False and snap["pending"] == 0
    finally:
        mgr.close()


def test_submit_to_dead_shard_is_retryable(catalog):
    mgr = ShardManager(
        catalog,
        shards=1,
        max_workers=1,
        net_fault_plan=ScheduledFaultPlan(at=(0,), kind="shard_crash"),
    )
    try:
        with pytest.raises(ShardDiedError):
            mgr.shards[0].submit(
                [SSSPQuery(graph_id="alpha", source=0)]
            ).result(timeout=5)
        with pytest.raises(ShardDiedError) as exc:
            mgr.shards[0].submit([SSSPQuery(graph_id="alpha", source=1)])
        assert exc.value.transient is True
    finally:
        mgr.close()


def test_manager_converts_dead_shard_to_unavailable(catalog):
    """No supervisor attached: dead-shard traffic fast-fails in-band."""
    adm = AdmissionController(max_inflight=8)
    mgr = ShardManager(
        catalog,
        shards=1,
        max_workers=1,
        admission=adm,
        net_fault_plan=ScheduledFaultPlan(at=(0,), kind="shard_crash"),
    )
    try:
        with pytest.raises(ShardDiedError):
            mgr.shards[0].submit(
                [SSSPQuery(graph_id="alpha", source=0)]
            ).result(timeout=5)
        r = mgr.run(SSSPQuery(graph_id="alpha", source=1))
        assert not r.ok and r.error.startswith("unavailable")
        assert adm.unavailable >= 1
        # the failed admission returned its tokens
        assert adm.inflight(0) == 0
    finally:
        mgr.close()


def test_adopt_and_restore_assignment_cycle(catalog):
    """Manager-level failover: orphaned graphs move, then come home."""
    mgr = ShardManager(catalog, shards=2, max_workers=1)
    try:
        graph = next(g for g, s in mgr._home.items() if s == 0)
        mgr.shards[0].retire("test-induced death")
        mgr.set_shard_state(0, "down")
        moved = mgr.adopt_shard_graphs(0)
        assert moved == {graph: 1}
        assert mgr.shard_of(graph) == 1
        assert mgr.run(SSSPQuery(graph_id=graph, source=0)).ok
        mgr.rebuild_shard(0)
        restored = mgr.restore_assignment(0)
        mgr.set_shard_state(0, "up")
        assert restored == [graph]
        assert mgr.shard_of(graph) == 0
        assert mgr.run(SSSPQuery(graph_id=graph, source=0)).ok
        # the replacement dispatcher runs fault-free
        assert mgr.shards[0].fault_plan is None
    finally:
        mgr.close()


def test_adopt_without_survivors_is_a_noop(catalog):
    mgr = ShardManager(catalog, shards=2, max_workers=1)
    try:
        mgr.set_shard_state(0, "down")
        mgr.set_shard_state(1, "down")
        assert mgr.adopt_shard_graphs(0) == {}
        assert mgr.shard_of("alpha") == mgr._home["alpha"]
    finally:
        mgr.close()


def test_health_serving_only_false_when_all_shards_down(catalog):
    """Satellite: /healthz flips 503 only when the whole fleet is gone."""
    mgr = ShardManager(catalog, shards=2, max_workers=1)
    try:
        health = mgr.health()
        assert health["serving"] is True and health["shards_up"] == 2
        assert all(row["dispatcher"]["alive"] for row in health["shards"])
        mgr.set_shard_state(0, "down")
        health = mgr.health()
        assert health["serving"] is True and health["shards_up"] == 1
        assert health["shards"][0]["serving"] is False
        mgr.set_shard_state(1, "failed")
        health = mgr.health()
        assert health["serving"] is False and health["shards_up"] == 0
    finally:
        mgr.close()


def test_close_is_idempotent(catalog):
    mgr = ShardManager(catalog, shards=2, max_workers=1)
    mgr.close()
    mgr.close()
    with pytest.raises(RuntimeError):
        mgr.shards[0].submit([SSSPQuery(graph_id="alpha", source=0)])


def _boom(queries):
    raise RuntimeError("engine exploded")
