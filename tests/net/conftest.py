"""Net-suite fixtures: a two-graph catalog and a live obs context."""

from __future__ import annotations

import pytest

from repro import obs
from repro.graph.generators import grid_road_network
from repro.service import GraphCatalog


@pytest.fixture(scope="module")
def grids():
    return {
        "alpha": grid_road_network(10, 10, seed=3),
        "beta": grid_road_network(8, 8, seed=4),
    }


@pytest.fixture
def catalog(grids):
    cat = GraphCatalog()
    for name, graph in grids.items():
        cat.register(name, graph)
    return cat


@pytest.fixture
def registry():
    """A live metrics registry installed for the duration of the test."""
    reg = obs.MetricsRegistry()
    with obs.use(registry=reg):
        yield reg
