"""Process-mode shards: parity with thread mode, crash isolation."""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.net import (
    UNAVAILABLE_PREFIX,
    ProcessShard,
    ShardManager,
    ShardSupervisor,
)
from repro.resilience import ScheduledFaultPlan
from repro.resilience.retry import RestartPolicy
from repro.service import SSSPQuery, handle_line


@pytest.fixture
def process_manager(catalog):
    mgr = ShardManager(
        catalog,
        shards=2,
        shard_mode="process",
        heartbeat_ms=150.0,
        max_workers=1,
    )
    yield mgr
    mgr.close(cancel_pending=True)


def _strip(d):
    if not isinstance(d, dict):
        return d
    d = {k: v for k, v in d.items() if k not in ("wall_seconds", "trace")}
    if "results" in d:
        d["results"] = [_strip(x) for x in d["results"]]
    return d


def test_process_mode_protocol_matches_thread_mode(catalog, grids, registry):
    """The acceptance bar: process-mode answers byte-match thread-mode."""
    from repro.service import GraphCatalog

    thread_cat = GraphCatalog()
    for name, graph in grids.items():
        thread_cat.register(name, graph)
    thread_mgr = ShardManager(thread_cat, shards=2, max_workers=1)
    proc_mgr = ShardManager(
        catalog, shards=2, shard_mode="process", max_workers=1
    )
    try:
        for line in [
            '{"op": "query", "graph": "alpha", "source": 0}',
            '{"op": "query", "graph": "beta", "sources": [0, 1, 2]}',
            '{"op": "query", "graph": "alpha", "source": 3, '
            '"algorithm": "dijkstra"}',
            '{"op": "query", "graph": "nope", "source": 0, "id": "x"}',
            '{"op": "graphs"}',
            "not json",
        ]:
            threaded = _strip(handle_line(thread_mgr, line))
            process = _strip(handle_line(proc_mgr, line))
            assert json.dumps(process, sort_keys=True) == json.dumps(
                threaded, sort_keys=True
            ), line
    finally:
        thread_mgr.close(cancel_pending=True)
        proc_mgr.close(cancel_pending=True)


def test_run_many_round_trips_through_worker(process_manager):
    queries = [
        SSSPQuery(graph_id="alpha", source=1),
        SSSPQuery(graph_id="beta", source=2),
        SSSPQuery(graph_id="alpha", source=3),
    ]
    responses = process_manager.run_many(queries)
    assert all(r.ok for r in responses)
    assert [r.query.source for r in responses] == [1, 2, 3]
    # telemetry stays parent-side: the worker never fabricates a trace
    assert all(r.trace_id is None for r in responses)


def test_stats_and_health_surface_worker_facts(process_manager):
    stats = process_manager.stats()
    assert stats["shard_mode"] == "process"
    health = process_manager.health()
    assert health["shard_mode"] == "process"
    for row in health["shards"]:
        dispatcher = row["dispatcher"]
        assert dispatcher["mode"] == "process"
        worker = dispatcher["worker"]
        assert isinstance(worker["pid"], int)
        assert worker["alive"] is True
        assert worker["heartbeat_age_ms"] >= 0.0


def test_worker_kill_mid_batch_fails_only_dead_shards_sources(catalog, registry):
    """A worker death mid-batch must never surface partial distances."""
    mgr = ShardManager(
        catalog,
        shards=2,
        shard_mode="process",
        max_workers=1,
        net_fault_plan=ScheduledFaultPlan(at=(0,), kind="worker_kill"),
        net_fault_shard=0,
    )
    try:
        # one batch spanning both shards: alpha (shard 0, sabotaged)
        # and beta (shard 1, healthy)
        queries = [
            SSSPQuery(graph_id="alpha", source=0),
            SSSPQuery(graph_id="beta", source=0),
            SSSPQuery(graph_id="alpha", source=1),
            SSSPQuery(graph_id="beta", source=1),
        ]
        responses = mgr.run_many(queries)
        by_graph = {}
        for r in responses:
            by_graph.setdefault(r.query.graph_id, []).append(r)
        for r in by_graph["alpha"]:
            assert not r.ok
            assert r.error.startswith(UNAVAILABLE_PREFIX)
            assert r.reached == 0 and r.max_dist is None
        for r in by_graph["beta"]:
            assert r.ok, r.error
            assert r.reached > 0
    finally:
        mgr.close(cancel_pending=True)


def test_supervisor_respawns_killed_worker_and_restores_answers(
    catalog, registry
):
    mgr = ShardManager(
        catalog,
        shards=2,
        shard_mode="process",
        heartbeat_ms=100.0,
        max_workers=1,
    )
    policy = RestartPolicy(budget=3, base_delay=0.05, max_delay=0.2, jitter=0.0)
    supervisor = ShardSupervisor(
        mgr,
        restart_policy=policy,
        check_interval=0.02,
        stall_seconds=2.0,
    )
    supervisor.start()
    try:
        baseline = mgr.run_many(
            [SSSPQuery(graph_id=g, source=0) for g in ("alpha", "beta")]
        )
        assert all(r.ok for r in baseline)
        old_pid = mgr.shards[0].client.proc.pid
        os.kill(old_pid, signal.SIGKILL)
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            report = supervisor.report()
            watch = report["shards"]["0"]
            if watch["state"] == "up" and watch["restarts"] >= 1:
                break
            time.sleep(0.02)
        report = supervisor.report()
        assert report["shards"]["0"]["state"] == "up"
        assert report["shards"]["0"]["restarts"] >= 1
        # the respawned worker re-adopted its partition: same answers,
        # new pid
        again = mgr.run_many(
            [SSSPQuery(graph_id=g, source=0) for g in ("alpha", "beta")]
        )
        assert all(r.ok for r in again)
        assert [r.max_dist for r in again] == [r.max_dist for r in baseline]
        assert mgr.shards[0].client.proc.pid != old_pid
        assert (
            registry.counter("net.worker.restarts", {"shard": "0"}).value >= 1
        )
    finally:
        supervisor.stop()
        mgr.close(cancel_pending=True)


def test_idle_heartbeat_keeps_worker_alive(catalog, registry):
    shard = ProcessShard(0, catalog, heartbeat_ms=80.0)
    try:
        time.sleep(0.5)  # several heartbeat intervals of pure idleness
        assert shard.alive
        assert not shard.heartbeat_expired()
        assert shard.beat_age() < 1.0
        snap = shard.dispatcher_snapshot()
        assert snap["mode"] == "process"
        assert snap["worker"]["alive"] is True
    finally:
        shard.close()


def test_frozen_worker_trips_heartbeat_watchdog(catalog, registry):
    shard = ProcessShard(0, catalog, heartbeat_ms=80.0)
    supervisor_saw_it = False
    try:
        os.kill(shard.client.proc.pid, signal.SIGSTOP)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if shard.heartbeat_expired():
                    supervisor_saw_it = True
                    break
                time.sleep(0.02)
        finally:
            os.kill(shard.client.proc.pid, signal.SIGCONT)
        assert supervisor_saw_it
    finally:
        shard.close()


def test_shard_manager_rejects_unknown_mode(catalog):
    with pytest.raises(ValueError, match="shard_mode"):
        ShardManager(catalog, shards=1, shard_mode="fiber")
