"""WorkerClient: spawn, handshake, correlation, death, backpressure."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.graph.generators import grid_road_network
from repro.net.worker import (
    WorkerClient,
    WorkerRequestError,
    query_from_wire,
    query_to_wire,
)
from repro.resilience import ScheduledFaultPlan
from repro.service import QueryEngine, SSSPQuery
from repro.service.catalog import GraphCatalog


def _client(grids, **kwargs):
    kwargs.setdefault("engine_kwargs", {"mode": "thread", "max_workers": 1})
    kwargs.setdefault("heartbeat_ms", 100.0)
    return WorkerClient(0, grids, **kwargs)


def _wire(graph, sources):
    return [
        query_to_wire(SSSPQuery(graph_id=graph, source=s)) for s in sources
    ]


def test_request_answers_match_in_process_engine(grids, registry):
    cat = GraphCatalog()
    for name, graph in grids.items():
        cat.register(name, graph)
    engine = QueryEngine(cat, max_workers=1)
    client = _client(grids)
    try:
        queries = [
            SSSPQuery(graph_id=g, source=s)
            for g in sorted(grids)
            for s in (0, 5)
        ]
        body = client.request(
            [query_to_wire(q) for q in queries]
        ).result(timeout=30.0)
        rows = body["responses"]
        direct = engine.run_many(queries)
        assert len(rows) == len(direct)
        for row, want in zip(rows, direct):
            assert row["ok"] is want.ok
            assert row["reached"] == want.reached
            assert row["max_dist"] == want.max_dist
            assert row["mean_dist"] == want.mean_dist
            assert row["fingerprint"] == want.fingerprint
    finally:
        client.close()
        engine.close()


def test_handshake_records_graph_fingerprints(grids, registry):
    client = _client(grids)
    try:
        assert set(client.graph_fingerprints) == set(grids)
        for name, graph in grids.items():
            assert client.graph_fingerprints[name] == graph.fingerprint()
        snap = client.snapshot()
        assert snap["alive"] is True
        assert snap["pid"] == client.proc.pid
        assert snap["exit"] is None
    finally:
        client.close()


def test_concurrent_requests_correlate_correctly(grids, registry):
    client = _client(grids)
    try:
        futures = [
            (s, client.request(_wire("alpha", [s])))
            for s in range(8)
        ]
        engine_cat = GraphCatalog()
        engine_cat.register("alpha", grids["alpha"])
        engine = QueryEngine(engine_cat, max_workers=1)
        try:
            for source, future in futures:
                row = future.result(timeout=30.0)["responses"][0]
                want = engine.run(SSSPQuery(graph_id="alpha", source=source))
                assert row["max_dist"] == want.max_dist, source
        finally:
            engine.close()
    finally:
        client.close()


def test_sigkill_fails_inflight_and_subsequent_requests(grids, registry):
    client = _client(grids)
    try:
        os.kill(client.proc.pid, signal.SIGKILL)
        client.proc.wait(timeout=10.0)
        deadline = time.monotonic() + 5.0
        while client.alive and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not client.alive
        # the reader may see the EOF before waitpid reaps the corpse;
        # either way the death is recorded and exit_description is exact
        assert client.death_reason
        assert "SIGKILL" in client.exit_description()
        with pytest.raises(WorkerRequestError, match="retry"):
            client.request(_wire("alpha", [0])).result(timeout=5.0)
    finally:
        client.close()


def test_sigstop_expires_heartbeat_and_request_deadline(grids, registry):
    client = _client(grids, heartbeat_timeout_ms=300.0)
    try:
        assert not client.heartbeat_expired()
        os.kill(client.proc.pid, signal.SIGSTOP)
        try:
            future = client.request(_wire("alpha", [0]), deadline_seconds=0.4)
            with pytest.raises(WorkerRequestError, match="deadline"):
                future.result(timeout=10.0)
            deadline = time.monotonic() + 5.0
            while not client.heartbeat_expired() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert client.heartbeat_expired()
            assert (
                registry.counter(
                    "net.worker.heartbeat_misses", {"shard": "0"}
                ).value
                >= 1
            )
        finally:
            os.kill(client.proc.pid, signal.SIGCONT)
    finally:
        client.close()


def test_window_full_sheds_retryably(grids, registry):
    client = _client(grids, window=1)
    try:
        os.kill(client.proc.pid, signal.SIGSTOP)
        try:
            first = client.request(_wire("alpha", [0]), deadline_seconds=30.0)
            second = client.request(_wire("alpha", [1]), deadline_seconds=0.2)
            with pytest.raises(WorkerRequestError, match="window full"):
                second.result(timeout=5.0)
        finally:
            os.kill(client.proc.pid, signal.SIGCONT)
        # the stalled slot drains once the worker resumes
        assert first.result(timeout=30.0)["responses"][0]["ok"]
    finally:
        client.close()


def test_corrupt_response_fails_only_its_frame(grids, registry):
    client = _client(
        grids,
        fault_plan=ScheduledFaultPlan(at=(0,), kind="frame_corrupt"),
    )
    try:
        with pytest.raises(WorkerRequestError):
            client.request(_wire("alpha", [0])).result(timeout=30.0)
        assert (
            registry.counter("net.worker.frames_corrupt", {"shard": "0"}).value
            == 1
        )
        # the stream resynced: the very next request succeeds
        body = client.request(_wire("alpha", [0])).result(timeout=30.0)
        assert body["responses"][0]["ok"]
        assert client.alive
    finally:
        client.close()


def test_adopt_graph_after_handshake(grids, registry):
    client = _client(grids)
    try:
        extra = grid_road_network(6, 6, seed=31)
        client.adopt_graph("gamma", extra)
        assert client.graph_fingerprints["gamma"] == extra.fingerprint()
        body = client.request(_wire("gamma", [0])).result(timeout=30.0)
        assert body["responses"][0]["ok"]
        assert body["responses"][0]["fingerprint"] == extra.fingerprint()
    finally:
        client.close()


def test_query_wire_round_trip():
    q = SSSPQuery(
        graph_id="g",
        source=4,
        algorithm="dijkstra",
        params={"delta": 2.0},
        request_id="r-1",
    )
    assert query_from_wire(query_to_wire(q)) == q


def test_close_is_idempotent(grids, registry):
    client = _client(grids)
    client.close()
    client.close()
    assert not client.alive
