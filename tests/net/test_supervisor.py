"""ShardSupervisor: detection, restart budget, failover, degraded routing.

Timing-sensitive decisions (backoff windows, the stall watchdog) are
driven through ``supervisor.check(now=...)`` with an explicit fake
clock — no sleeps, no background thread — so every state transition in
these tests is deterministic.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.net import (
    AdmissionController,
    ShardDiedError,
    ShardManager,
    ShardSupervisor,
)
from repro.resilience import RestartPolicy, ScheduledFaultPlan
from repro.service import SSSPQuery


def _manager(catalog, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("max_workers", 1)
    return ShardManager(catalog, **kwargs)


def _crash_shard0(catalog, **kwargs):
    """A manager whose shard 0 dispatcher dies on its first cycle."""
    return _manager(
        catalog,
        net_fault_plan=ScheduledFaultPlan(at=(0,), kind="shard_crash"),
        net_fault_shard=0,
        **kwargs,
    )


def _kill(mgr, index=0, timeout=2.0):
    """Trigger the scheduled crash and wait for the dispatcher to die."""
    graph = next(g for g, s in mgr._home.items() if s == index)
    mgr.submit_many([SSSPQuery(graph_id=graph, source=0)]).result(timeout=5)
    deadline = time.monotonic() + timeout
    while mgr.shards[index].alive and time.monotonic() < deadline:
        time.sleep(0.005)
    assert not mgr.shards[index].alive
    return graph


def test_crash_detected_and_restarted_fake_clock(catalog):
    mgr = _crash_shard0(catalog)
    try:
        sup = ShardSupervisor(
            mgr,
            restart_policy=RestartPolicy(
                budget=3, base_delay=10.0, max_delay=100.0, jitter=0.0
            ),
            stall_seconds=1.0,
        )
        graph = _kill(mgr)
        t0 = 1000.0
        sup.check(now=t0)
        assert sup.state(0) == "down"
        assert mgr.shard_state(0) == "down"
        # degraded mode: the dead shard's graph fast-fails in-band
        r = mgr.run(SSSPQuery(graph_id=graph, source=1))
        assert not r.ok and r.error.startswith("unavailable")
        # inside the backoff window nothing happens
        sup.check(now=t0 + 5.0)
        assert sup.state(0) == "down"
        # past the window: rebuilt, routing restored, serving again
        sup.check(now=t0 + 10.5)
        assert sup.state(0) == "up"
        assert mgr.shard_state(0) == "up"
        assert mgr.run(SSSPQuery(graph_id=graph, source=1)).ok
        report = sup.report()
        assert report["shards"]["0"]["restarts"] == 1
        assert report["shards"]["0"]["last_recovery_ms"] is not None
        assert report["shards"]["1"]["restarts"] == 0
    finally:
        mgr.close()


def test_restart_budget_exhaustion_marks_failed(catalog):
    mgr = _crash_shard0(catalog)
    try:
        sup = ShardSupervisor(
            mgr,
            restart_policy=RestartPolicy(budget=0),
            stall_seconds=1.0,
        )
        graph = _kill(mgr)
        sup.check(now=100.0)
        assert sup.state(0) == "failed"
        assert mgr.shard_state(0) == "failed"
        # a failed shard stays failed across further passes
        sup.check(now=10_000.0)
        assert sup.state(0) == "failed"
        r = mgr.run(SSSPQuery(graph_id=graph, source=0))
        assert not r.ok and r.error.startswith("unavailable")
        # the surviving shard keeps the deployment serving
        assert mgr.health()["serving"] is True
    finally:
        mgr.close()


def test_failover_adopt_moves_graphs_to_survivor(catalog):
    mgr = _crash_shard0(catalog)
    try:
        sup = ShardSupervisor(
            mgr,
            restart_policy=RestartPolicy(
                budget=3, base_delay=10.0, max_delay=100.0, jitter=0.0
            ),
            failover="adopt",
            stall_seconds=1.0,
        )
        graph = _kill(mgr)
        t0 = 50.0
        sup.check(now=t0)
        assert sup.state(0) == "down"
        # the orphaned graph now routes to (and is answered by) shard 1
        assert mgr.shard_of(graph) == 1
        r = mgr.run(SSSPQuery(graph_id=graph, source=2))
        assert r.ok
        assert sup.report()["shards"]["0"]["failovers"] == 1
        # recovery points it back home
        sup.check(now=t0 + 11.0)
        assert sup.state(0) == "up"
        assert mgr.shard_of(graph) == 0
        assert mgr.run(SSSPQuery(graph_id=graph, source=2)).ok
    finally:
        mgr.close()


def test_stall_watchdog_replaces_wedged_dispatcher(catalog):
    mgr = _manager(catalog)
    try:
        sup = ShardSupervisor(
            mgr,
            restart_policy=RestartPolicy(budget=2, base_delay=0.0, jitter=0.0),
            stall_seconds=1.0,
        )
        shard = mgr.shards[0]
        # fabricate a wedge: pending work, heartbeat long stale
        from repro.net.shard import _WorkItem
        from concurrent.futures import Future

        stuck = _WorkItem([SSSPQuery(graph_id="alpha", source=0)], Future())
        with shard._plock:
            shard._pending[stuck] = None
        stuck.enqueued_at = 0.0
        shard.last_beat = 0.0
        now = 10.0
        assert shard.stalled(1.0, now)
        sup.check(now=now)
        assert sup.state(0) == "down"
        # the stuck group's future was failed retryably, not stranded
        with pytest.raises(ShardDiedError):
            stuck.future.result(timeout=1)
        # zero base delay: the next pass rebuilds immediately
        sup.check(now=now + 0.001)
        assert sup.state(0) == "up"
        assert mgr.run(SSSPQuery(graph_id="alpha", source=1)).ok
    finally:
        mgr.close()


def test_idle_shard_is_not_flagged_stalled(catalog):
    mgr = _manager(catalog)
    try:
        shard = mgr.shards[0]
        # ancient heartbeat but empty queue: idle, not wedged
        shard.last_beat = 0.0
        assert not shard.stalled(1.0, now=10_000.0)
    finally:
        mgr.close()


def test_background_thread_restarts_without_fake_clock(catalog, registry):
    """The integration path: real thread, real (small) backoff."""
    mgr = _crash_shard0(catalog)
    sup = ShardSupervisor(
        mgr,
        restart_policy=RestartPolicy(budget=3, base_delay=0.01, jitter=0.0),
        check_interval=0.01,
        stall_seconds=1.0,
    )
    sup.start()
    try:
        graph = _kill(mgr)

        def _recovered():
            row = sup.report()["shards"]["0"]
            return row["restarts"] >= 1 and row["state"] == "up"

        deadline = time.monotonic() + 5.0
        while not _recovered() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert _recovered()
        assert mgr.run(SSSPQuery(graph_id=graph, source=3)).ok
        snapshot = registry.snapshot()
        assert snapshot["net.shard.restarts"]["value"] >= 1
    finally:
        mgr.close()  # stops the supervisor too


def test_shard_down_and_up_events_emitted(catalog):
    events = []

    class _Sink:
        enabled = True

        def emit(self, event):
            events.append(event)

    with obs.use(events=_Sink()):
        mgr = _crash_shard0(catalog)
        try:
            sup = ShardSupervisor(
                mgr,
                restart_policy=RestartPolicy(
                    budget=2, base_delay=0.0, jitter=0.0
                ),
                stall_seconds=1.0,
            )
            _kill(mgr)
            sup.check(now=1.0)
            sup.check(now=2.0)
        finally:
            mgr.close()
    kinds = [e["type"] for e in events]
    assert "shard_died" in kinds
    assert "shard_down" in kinds
    assert "shard_up" in kinds
    down = next(e for e in events if e["type"] == "shard_down")
    assert down["shard"] == 0 and down["restart"] == 1
    up = next(e for e in events if e["type"] == "shard_up")
    assert up["shard"] == 0 and up["downtime_ms"] >= 0


def test_supervisor_report_in_health_and_healthz_criterion(catalog):
    adm = AdmissionController(max_inflight=16)
    mgr = _crash_shard0(catalog, admission=adm)
    try:
        sup = ShardSupervisor(
            mgr,
            restart_policy=RestartPolicy(budget=0),
            stall_seconds=1.0,
        )
        health = mgr.health()
        assert health["serving"] is True and health["shards_up"] == 2
        assert health["supervisor"]["failover"] == "failfast"
        _kill(mgr)
        sup.check(now=1.0)
        health = mgr.health()
        # one shard failed: degraded but still serving
        assert health["serving"] is True and health["shards_up"] == 1
        assert health["shards"][0]["state"] == "failed"
        assert health["shards"][1]["state"] == "up"
        assert health["supervisor"]["degraded"] == 1
    finally:
        mgr.close()


def test_rejects_bad_parameters(catalog):
    mgr = _manager(catalog)
    try:
        with pytest.raises(ValueError):
            ShardSupervisor(mgr, failover="nope")
        with pytest.raises(ValueError):
            ShardSupervisor(mgr, check_interval=0)
        with pytest.raises(ValueError):
            ShardSupervisor(mgr, stall_seconds=0)
    finally:
        mgr.close()


def test_restart_preserves_catalog_and_cache_keys(catalog):
    """A rebuilt shard serves the same graphs with the same fingerprints."""
    mgr = _crash_shard0(catalog)
    try:
        sup = ShardSupervisor(
            mgr,
            restart_policy=RestartPolicy(budget=2, base_delay=0.0, jitter=0.0),
            stall_seconds=1.0,
        )
        before = mgr.run(SSSPQuery(graph_id="beta", source=0))
        graph = _kill(mgr)
        sup.check(now=1.0)
        sup.check(now=2.0)
        assert sup.state(0) == "up"
        after_crashed = mgr.run(SSSPQuery(graph_id=graph, source=0))
        after_other = mgr.run(SSSPQuery(graph_id="beta", source=0))
        assert after_crashed.ok
        assert after_other.ok
        assert after_other.fingerprint == before.fingerprint
        # replacement shard runs fault-free: no crash loop
        assert mgr.shards[0].fault_plan is None
    finally:
        mgr.close()
