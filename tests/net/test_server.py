"""NetServer: socket protocol streams, HTTP endpoints, edge cases.

No pytest-asyncio here: each test drives its own ``asyncio.run`` with
the server and client on the same loop, which keeps the suite
dependency-free and the lifetimes obvious.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.net import NetServer, ShardManager, parse_listen
from repro.resilience import ScheduledFaultPlan
from repro.service import MAX_BATCH_SOURCES


@pytest.fixture
def manager(catalog):
    mgr = ShardManager(catalog, shards=2, max_workers=2)
    yield mgr
    mgr.close()


def _run(manager, scenario):
    """Start a server on a free port, run ``scenario(host, port)``."""

    async def main():
        server = NetServer(manager, port=0)
        await server.start()
        try:
            host, port = server.address
            return await scenario(host, port)
        finally:
            await server.stop()

    return asyncio.run(main())


async def _roundtrip(host, port, *lines):
    """Open one connection, send each line, collect one reply per line."""
    reader, writer = await asyncio.open_connection(host, port)
    replies = []
    try:
        for line in lines:
            writer.write(line.encode() + b"\n")
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
    return replies


async def _http(host, port, request: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(request)
        await writer.drain()
        return await reader.read()
    finally:
        writer.close()
        await writer.wait_closed()


def test_query_roundtrip_over_socket(manager):
    async def scenario(host, port):
        return await _roundtrip(
            host, port,
            '{"op": "query", "graph": "alpha", "source": 0}',
            '{"op": "query", "graph": "beta", "sources": [0, 1]}',
        )

    single, batched = _run(manager, scenario)
    assert single["ok"] and single["graph"] == "alpha"
    assert batched["ok"] and batched["count"] == 2


def test_one_connection_is_one_protocol_stream(manager):
    async def scenario(host, port):
        return await _roundtrip(
            host, port,
            '{"op": "stats"}',
            '{"op": "query", "graph": "alpha", "source": 1}',
            '{"op": "health"}',
        )

    stats, query, health = _run(manager, scenario)
    assert stats["ok"] and stats["op"] == "stats"
    assert query["ok"]
    assert health["ok"] and health["op"] == "health"


def test_malformed_json_answers_in_band_and_stream_survives(manager):
    async def scenario(host, port):
        return await _roundtrip(
            host, port,
            "this is not json",
            '{"op": "query", "graph": "alpha", "source": 0}',
        )

    bad, good = _run(manager, scenario)
    assert not bad["ok"] and "invalid JSON" in bad["error"]
    assert good["ok"]


def test_oversized_sources_batch_rejected_in_band(manager):
    sources = list(range(MAX_BATCH_SOURCES + 1))

    async def scenario(host, port):
        return await _roundtrip(
            host, port,
            json.dumps({"op": "query", "graph": "alpha", "sources": sources}),
            '{"op": "query", "graph": "alpha", "source": 0}',
        )

    bad, good = _run(manager, scenario)
    assert not bad["ok"] and str(MAX_BATCH_SOURCES) in bad["error"]
    assert good["ok"]


def test_mid_request_disconnect_leaves_server_serving(manager):
    async def scenario(host, port):
        # half a request line, then vanish without a newline
        _, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "query", "graph": "al')
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        await asyncio.sleep(0.05)
        # the server must still answer a fresh connection
        return await _roundtrip(
            host, port, '{"op": "query", "graph": "alpha", "source": 0}'
        )

    (reply,) = _run(manager, scenario)
    assert reply["ok"]


def test_partial_line_at_eof_still_answered(manager):
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "stats"}')  # no trailing newline
        writer.write_eof()
        line = await reader.readline()
        writer.close()
        await writer.wait_closed()
        return json.loads(line)

    reply = _run(manager, scenario)
    assert reply["ok"] and reply["op"] == "stats"


def test_overlong_line_answered_then_closed(manager):
    from repro.net.server import MAX_LINE_BYTES

    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"padding": "' + b"x" * MAX_LINE_BYTES + b'"}\n')
        await writer.drain()
        line = await reader.readline()
        rest = await reader.read()  # server closes after answering
        writer.close()
        await writer.wait_closed()
        return json.loads(line), rest

    reply, rest = _run(manager, scenario)
    assert not reply["ok"] and "exceeds" in reply["error"]
    assert rest == b""


def test_http_metrics_endpoint_serves_prometheus(registry, manager):
    async def scenario(host, port):
        return await _http(
            host, port, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"
        )

    data = _run(manager, scenario)
    head, _, body = data.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert b"text/plain" in head
    assert b"repro_net_connections" in body


def test_http_healthz_reports_ok(manager):
    async def scenario(host, port):
        return await _http(host, port, b"GET /healthz HTTP/1.0\r\n\r\n")

    data = _run(manager, scenario)
    head, _, body = data.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    payload = json.loads(body)
    assert payload["ok"] is True and payload["pool"]["alive"] is True


def test_http_unknown_path_is_404_and_bad_method_is_405(manager):
    async def scenario(host, port):
        missing = await _http(host, port, b"GET /nope HTTP/1.1\r\n\r\n")
        posted = await _http(host, port, b"POST /metrics HTTP/1.1\r\n\r\n")
        return missing, posted

    missing, posted = _run(manager, scenario)
    assert missing.startswith(b"HTTP/1.1 404")
    assert posted.startswith(b"HTTP/1.1 405")
    assert b"Allow: GET, HEAD" in posted


def test_head_request_omits_the_body(manager):
    async def scenario(host, port):
        return await _http(host, port, b"HEAD /metrics HTTP/1.1\r\n\r\n")

    data = _run(manager, scenario)
    head, _, body = data.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200 OK")
    assert body == b""


def test_concurrent_connections_interleave(manager):
    async def scenario(host, port):
        async def one(graph, source):
            (reply,) = await _roundtrip(
                host, port,
                json.dumps(
                    {"op": "query", "graph": graph, "source": source}
                ),
            )
            return reply

        return await asyncio.gather(
            *(one("alpha" if i % 2 else "beta", i) for i in range(16))
        )

    replies = _run(manager, scenario)
    assert len(replies) == 16
    assert all(r["ok"] for r in replies)


def test_stop_drains_inflight_requests(catalog):
    """Satellite: stop() waits for busy requests before cutting cords."""
    mgr = ShardManager(
        catalog,
        shards=1,
        max_workers=1,
        net_fault_plan=ScheduledFaultPlan(
            at=(0,), kind="slow_shard", slow_seconds=0.3
        ),
    )

    async def main():
        server = NetServer(mgr, port=0)
        await server.start()
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "query", "graph": "alpha", "source": 0}\n')
        await writer.drain()
        await asyncio.sleep(0.1)  # the slow dispatch cycle is underway
        stop_task = asyncio.ensure_future(server.stop(drain_seconds=5.0))
        line = await reader.readline()
        await stop_task
        writer.close()
        await writer.wait_closed()
        # the listener closed immediately: no new connections
        refused = False
        try:
            await asyncio.open_connection(host, port)
        except OSError:
            refused = True
        return json.loads(line), refused

    try:
        reply, refused = asyncio.run(main())
    finally:
        mgr.close()
    assert reply["ok"] and reply["graph"] == "alpha"
    assert refused


def test_stop_is_idempotent_under_signal_races(catalog):
    """Satellite: a second SIGTERM (stop() racing stop()) must not raise.

    The first stop owns the shutdown; every later call — concurrent or
    after completion — just awaits the same drain instead of
    double-closing the listener.
    """
    mgr = ShardManager(
        catalog,
        shards=1,
        max_workers=1,
        net_fault_plan=ScheduledFaultPlan(
            at=(0,), kind="slow_shard", slow_seconds=0.3
        ),
    )

    async def main():
        server = NetServer(mgr, port=0)
        await server.start()
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "query", "graph": "alpha", "source": 0}\n')
        await writer.drain()
        await asyncio.sleep(0.1)  # request in flight: stop() must drain
        # two signals in flight: both stops run concurrently...
        first = asyncio.ensure_future(server.stop(drain_seconds=5.0))
        second = asyncio.ensure_future(server.stop(drain_seconds=5.0))
        line = await reader.readline()
        await asyncio.gather(first, second)
        # ...and a third stop after completion is equally harmless
        await server.stop()
        writer.close()
        await writer.wait_closed()
        return json.loads(line)

    try:
        reply = asyncio.run(main())
    finally:
        mgr.close()
    assert reply["ok"] and reply["graph"] == "alpha"


def test_conn_drop_fault_then_reconnect_works(catalog):
    mgr = ShardManager(catalog, shards=1, max_workers=1)
    plan = ScheduledFaultPlan(at=(0,), kind="conn_drop")

    async def main():
        server = NetServer(mgr, port=0, fault_plan=plan)
        await server.start()
        try:
            host, port = server.address
            # connection 0 is sabotaged: the request line is read, the
            # socket is closed without an answer
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "stats"}\n')
            await writer.drain()
            first = await reader.readline()
            writer.close()
            await writer.wait_closed()
            # connection 1 is clean
            replies = await _roundtrip(
                host, port, '{"op": "query", "graph": "alpha", "source": 0}'
            )
            return first, replies[0], server.conns_dropped
        finally:
            await server.stop()

    try:
        first, reply, dropped = asyncio.run(main())
    finally:
        mgr.close()
    assert first == b""  # EOF, no in-band answer
    assert reply["ok"]
    assert dropped == 1


def test_healthz_degraded_is_200_all_shards_down_is_503(catalog):
    """Satellite: 503 only when *no* shard can answer."""
    mgr = ShardManager(catalog, shards=2, max_workers=1)

    async def scenario(host, port):
        mgr.set_shard_state(0, "down")
        degraded = await _http(host, port, b"GET /healthz HTTP/1.0\r\n\r\n")
        mgr.set_shard_state(1, "failed")
        dead = await _http(host, port, b"GET /healthz HTTP/1.0\r\n\r\n")
        return degraded, dead

    try:
        degraded, dead = _run(mgr, scenario)
    finally:
        mgr.close()
    assert degraded.startswith(b"HTTP/1.1 200 OK")
    payload = json.loads(degraded.partition(b"\r\n\r\n")[2])
    assert payload["ok"] is True and payload["shards_up"] == 1
    assert dead.startswith(b"HTTP/1.1 503")
    payload = json.loads(dead.partition(b"\r\n\r\n")[2])
    assert payload["ok"] is False and payload["shards_up"] == 0


def test_parse_listen_forms():
    assert parse_listen("0.0.0.0:9000") == ("0.0.0.0", 9000)
    assert parse_listen(":9000") == ("127.0.0.1", 9000)
    assert parse_listen("9000") == ("127.0.0.1", 9000)
    with pytest.raises(ValueError):
        parse_listen("host:notaport")
    with pytest.raises(ValueError):
        parse_listen("host:70000")
