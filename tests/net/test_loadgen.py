"""Loadgen: closed-loop traffic, shed classification, summaries."""

from __future__ import annotations

import asyncio

import pytest

from repro.net import (
    AdmissionController,
    NetServer,
    ShardManager,
    run_loadgen,
)
from repro.resilience import ScheduledFaultPlan


def _drive(manager, server_kwargs=None, **kwargs):
    async def main():
        server = NetServer(manager, port=0, **(server_kwargs or {}))
        await server.start()
        try:
            host, port = server.address
            return await run_loadgen(f"{host}:{port}", **kwargs)
        finally:
            await server.stop()

    return asyncio.run(main())


def test_light_load_sheds_nothing(catalog):
    mgr = ShardManager(
        catalog,
        shards=2,
        admission=AdmissionController(max_inflight=256),
        max_workers=2,
    )
    try:
        summary = _drive(
            mgr, connections=4, duration_seconds=0.5, zipf_a=1.2
        )
    finally:
        mgr.close()
    assert summary["sent"] > 0
    assert summary["ok"] == summary["sent"]
    assert summary["shed"] == 0 and summary["errors"] == 0
    assert summary["qps"] > 0
    assert summary["latency"]["p99_ms"] >= summary["latency"]["p50_ms"]


def test_overload_sheds_and_classifies(catalog):
    mgr = ShardManager(
        catalog,
        shards=2,
        admission=AdmissionController(max_inflight=0),  # shed everything
        max_workers=1,
    )
    try:
        summary = _drive(
            mgr, connections=4, duration_seconds=0.3, zipf_a=1.2
        )
    finally:
        mgr.close()
    assert summary["sent"] > 0
    assert summary["shed"] == summary["sent"]
    assert summary["errors"] == 0  # sheds are not errors


def test_batched_requests_and_graph_pin(catalog):
    mgr = ShardManager(catalog, shards=2, max_workers=2)
    try:
        summary = _drive(
            mgr,
            connections=2,
            duration_seconds=0.3,
            zipf_a=0.0,  # uniform fallback
            batch=4,
            graph="alpha",
        )
    finally:
        mgr.close()
    assert summary["sent"] > 0 and summary["errors"] == 0


def _invariant(summary):
    return summary["sent"] == (
        summary["ok"]
        + summary["shed"]
        + summary["unavailable"]
        + summary["errors"]
        + summary["dropped"]
        + summary["hung"]
    )


def test_dead_shard_traffic_classified_unavailable(catalog):
    """A crashed, unsupervised shard answers in-band, never hangs."""
    mgr = ShardManager(
        catalog,
        shards=1,
        max_workers=1,
        admission=AdmissionController(max_inflight=64),
        net_fault_plan=ScheduledFaultPlan(at=(0,), kind="shard_crash"),
    )
    try:
        summary = _drive(
            mgr, connections=2, duration_seconds=0.4, zipf_a=1.2
        )
    finally:
        mgr.close()
    assert summary["sent"] > 0
    assert summary["unavailable"] > 0
    assert summary["errors"] == 0 and summary["hung"] == 0
    assert _invariant(summary)


def test_reconnects_through_connection_drops(catalog):
    mgr = ShardManager(catalog, shards=1, max_workers=2)
    try:
        summary = _drive(
            mgr,
            server_kwargs={
                "fault_plan": ScheduledFaultPlan(at=(0, 3), kind="conn_drop")
            },
            connections=2,
            duration_seconds=0.4,
            zipf_a=1.2,
        )
    finally:
        mgr.close()
    assert summary["dropped"] >= 1
    assert summary["ok"] > 0  # the workers reconnected and kept going
    assert summary["hung"] == 0 and summary["errors"] == 0
    assert _invariant(summary)


def test_collect_hook_captures_single_source_rows(catalog):
    mgr = ShardManager(catalog, shards=2, max_workers=2)
    collected = []
    try:
        summary = _drive(
            mgr,
            connections=2,
            duration_seconds=0.3,
            zipf_a=1.2,
            collect=collected,
        )
    finally:
        mgr.close()
    assert 0 < len(collected) <= summary["ok"]
    row = collected[0]
    assert set(row) == {"graph", "source", "reached", "max_dist", "mean_dist"}
    assert row["graph"] in ("alpha", "beta")
    assert row["reached"] > 0


def test_unknown_graph_pin_rejected(catalog):
    mgr = ShardManager(catalog, shards=1, max_workers=1)
    try:
        with pytest.raises(RuntimeError, match="not in server catalog"):
            _drive(
                mgr, connections=1, duration_seconds=0.2, graph="nope"
            )
    finally:
        mgr.close()


def test_parameter_validation(catalog):
    mgr = ShardManager(catalog, shards=1, max_workers=1)
    try:
        with pytest.raises(ValueError):
            _drive(mgr, connections=0, duration_seconds=0.2)
        with pytest.raises(ValueError):
            _drive(mgr, connections=1, duration_seconds=0.0)
    finally:
        mgr.close()
