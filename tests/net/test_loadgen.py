"""Loadgen: closed-loop traffic, shed classification, summaries."""

from __future__ import annotations

import asyncio

import pytest

from repro.net import (
    AdmissionController,
    NetServer,
    ShardManager,
    run_loadgen,
)


def _drive(manager, **kwargs):
    async def main():
        server = NetServer(manager, port=0)
        await server.start()
        try:
            host, port = server.address
            return await run_loadgen(f"{host}:{port}", **kwargs)
        finally:
            await server.stop()

    return asyncio.run(main())


def test_light_load_sheds_nothing(catalog):
    mgr = ShardManager(
        catalog,
        shards=2,
        admission=AdmissionController(max_inflight=256),
        max_workers=2,
    )
    try:
        summary = _drive(
            mgr, connections=4, duration_seconds=0.5, zipf_a=1.2
        )
    finally:
        mgr.close()
    assert summary["sent"] > 0
    assert summary["ok"] == summary["sent"]
    assert summary["shed"] == 0 and summary["errors"] == 0
    assert summary["qps"] > 0
    assert summary["latency"]["p99_ms"] >= summary["latency"]["p50_ms"]


def test_overload_sheds_and_classifies(catalog):
    mgr = ShardManager(
        catalog,
        shards=2,
        admission=AdmissionController(max_inflight=0),  # shed everything
        max_workers=1,
    )
    try:
        summary = _drive(
            mgr, connections=4, duration_seconds=0.3, zipf_a=1.2
        )
    finally:
        mgr.close()
    assert summary["sent"] > 0
    assert summary["shed"] == summary["sent"]
    assert summary["errors"] == 0  # sheds are not errors


def test_batched_requests_and_graph_pin(catalog):
    mgr = ShardManager(catalog, shards=2, max_workers=2)
    try:
        summary = _drive(
            mgr,
            connections=2,
            duration_seconds=0.3,
            zipf_a=0.0,  # uniform fallback
            batch=4,
            graph="alpha",
        )
    finally:
        mgr.close()
    assert summary["sent"] > 0 and summary["errors"] == 0


def test_unknown_graph_pin_rejected(catalog):
    mgr = ShardManager(catalog, shards=1, max_workers=1)
    try:
        with pytest.raises(RuntimeError, match="not in server catalog"):
            _drive(
                mgr, connections=1, duration_seconds=0.2, graph="nope"
            )
    finally:
        mgr.close()


def test_parameter_validation(catalog):
    mgr = ShardManager(catalog, shards=1, max_workers=1)
    try:
        with pytest.raises(ValueError):
            _drive(mgr, connections=0, duration_seconds=0.2)
        with pytest.raises(ValueError):
            _drive(mgr, connections=1, duration_seconds=0.0)
    finally:
        mgr.close()
