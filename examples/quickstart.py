#!/usr/bin/env python
"""Quickstart: baseline near+far vs the self-tuning controller.

Builds a small scale-free graph, runs the fixed-delta Gunrock-style
baseline and the paper's self-tuning algorithm side by side, verifies
both against Dijkstra, and prints the parallelism profiles — a
miniature of the paper's Figure 1.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.report import banner, format_series, format_table
from repro.graph import wiki_like
from repro.sssp import assert_distances_close, dijkstra, nearfar_sssp


def main() -> None:
    # 1. build a graph: the Wiki stand-in (scale-free, weights U{1..99})
    graph = wiki_like(scale=0.01, seed=1)
    source = int(np.argmax(np.diff(graph.indptr)))  # start at the hub
    print(banner("graph"))
    print(f"{graph!r}, source={source}")

    # 2. baseline: fixed delta (the knob the user must guess)
    baseline, base_trace = nearfar_sssp(graph, source)
    print(f"\nbaseline near+far: {baseline.iterations} iterations, "
          f"{baseline.relaxations:,} edge relaxations")

    # 3. self-tuning: pick a parallelism set-point instead of a delta
    setpoint = 4000.0
    tuned, tuned_trace, controller = adaptive_sssp(
        graph, source, AdaptiveParams(setpoint=setpoint)
    )
    print(f"self-tuning (P={setpoint:.0f}): {tuned.iterations} iterations, "
          f"{tuned.relaxations:,} edge relaxations")
    print(f"learned models: d={controller.d:.2f} (frontier degree), "
          f"alpha={controller.alpha:.2f} (vertices per unit delta)")

    # 4. both are exact
    reference = dijkstra(graph, source)
    assert_distances_close(reference, baseline)
    assert_distances_close(reference, tuned)
    print("\ndistances verified against Dijkstra ✓")

    # 5. the paper's Figure-1 story: same work, steadier parallelism
    print()
    print(banner("parallelism profiles (Figure 1 in miniature)"))
    print(format_series("baseline X^(2) per iter", base_trace.parallelism))
    print(format_series("self-tuned X^(2) per iter", tuned_trace.parallelism))
    print()
    print(
        format_table(
            [
                {
                    "algorithm": "baseline",
                    "mean parallelism": round(base_trace.average_parallelism, 1),
                    "cv": round(base_trace.parallelism_cv, 3),
                },
                {
                    "algorithm": f"self-tuning P={setpoint:.0f}",
                    "mean parallelism": round(tuned_trace.average_parallelism, 1),
                    "cv": round(tuned_trace.parallelism_cv, 3),
                },
            ]
        )
    )


if __name__ == "__main__":
    main()
