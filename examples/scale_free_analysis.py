#!/usr/bin/env python
"""Bursty scale-free workload: set-point sweep and PowerMon traces.

The Wiki-style hyperlink network is the paper's hard case: parallelism
arrives in huge bursts the controller can shape but not fully remove.
This example sweeps the set-point ladder, shows how the measured
parallelism distribution and the (simulated) PowerMon power trace
respond, and prints the speedup/relative-power frontier — the data
behind the paper's Figure 6(b).

Run:
    python examples/scale_free_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.report import banner, format_series, format_table
from repro.experiments.runner import find_time_minimizing_delta, pick_source
from repro.gpusim import get_device, sample_run, simulate_run
from repro.gpusim.dvfs import default_governor
from repro.graph import wiki_like
from repro.instrument import summarize
from repro.sssp import nearfar_sssp

SCALE = 0.02


def main() -> None:
    device = get_device("tx1")
    graph = wiki_like(scale=SCALE, seed=11)
    source = pick_source(graph)
    print(banner("scale-free workload"))
    print(f"{graph!r} on {device.name}, source={source} (hub)")

    best_delta, _ = find_time_minimizing_delta(graph, source, device)
    _, base_trace = nearfar_sssp(graph, source, delta=best_delta)
    ref = simulate_run(base_trace, device, default_governor(device))
    print(
        f"\nbaseline: delta={best_delta:.3g}, {len(base_trace)} iterations, "
        f"{ref.total_seconds * 1e3:.2f} ms, {ref.average_power_w:.2f} W"
    )

    ladder = np.geomspace(2_000, 64_000, 6)
    rows = []
    traces = {}
    for setpoint in ladder:
        _, trace, _ = adaptive_sssp(
            graph, source, AdaptiveParams(setpoint=float(setpoint))
        )
        run = simulate_run(trace, device, default_governor(device))
        pm = sample_run(run, seed=3)
        stats = summarize(trace.parallelism)
        traces[setpoint] = trace
        rows.append(
            {
                "P": int(setpoint),
                "median par": round(stats.median, 0),
                "p75 par": round(stats.p75, 0),
                "cv": round(stats.cv, 2),
                "speedup": round(ref.total_seconds / run.total_seconds, 3),
                "rel power": round(run.average_power_w / ref.average_power_w, 3),
                "powermon avg (W)": round(pm.average_power_w, 2)
                if pm.num_samples
                else float("nan"),
                "energy (J)": round(run.total_energy_j, 4),
            }
        )

    print()
    print(banner("set-point sweep (Figure 6(b)/7(b) axes)"))
    print(format_table(rows))

    print()
    print(banner("parallelism shaping"))
    print(format_series("baseline", base_trace.parallelism))
    lo, hi = ladder[0], ladder[-1]
    print(format_series(f"self-tuned P={lo:.0f}", traces[lo].parallelism))
    print(format_series(f"self-tuned P={hi:.0f}", traces[hi].parallelism))

    best = max(rows, key=lambda r: r["speedup"] / max(r["rel power"], 1e-9))
    print(
        f"\nbest efficiency point: P={best['P']} "
        f"(speedup {best['speedup']}, relative power {best['rel power']})"
    )


if __name__ == "__main__":
    main()
