#!/usr/bin/env python
"""Full DVFS x set-point matrix on both simulated Jetson boards.

Regenerates the paper's Figures 6 and 7 as tables, then summarises the
composition claim: which (speedup, relative power) points are reachable
with DVFS alone, and which only open up once the algorithmic knob is in
play.

Run:
    python examples/dvfs_exploration.py            # default bench scale
    REPRO_SCALE=0.05 python examples/dvfs_exploration.py
"""

from __future__ import annotations

from repro.experiments.config import default_config
from repro.experiments.fig6 import run_tradeoff
from repro.experiments.report import banner, format_table
from repro.gpusim import get_device


def main() -> None:
    config = default_config()
    print(f"running at scale={config.scale} (set REPRO_SCALE to change)\n")

    for device_name in ("tk1", "tx1"):
        device = get_device(device_name)
        data = run_tradeoff(device, config)
        fig = "6" if device_name == "tk1" else "7"
        for dataset, points in data.items():
            print(banner(f"Figure {fig}: {device.name} / {dataset}"))
            print(format_table([p.as_row() for p in points]))

            dvfs_only = [
                p for p in points if p.algorithm == "baseline" and p.dvfs != "auto"
            ]
            tuned = [p for p in points if p.algorithm == "self-tuning"]
            best_dvfs_speedup = max(p.speedup for p in dvfs_only)
            best_tuned = max(tuned, key=lambda p: p.speedup)
            eff_tuned = [p for p in tuned if p.energy_win and p.speedup >= 1.0]
            print(
                f"DVFS-only best speedup: {best_dvfs_speedup:.3f}; "
                f"with the algorithmic knob: {best_tuned.speedup:.3f} "
                f"(P={best_tuned.setpoint:.0f} @ {best_tuned.dvfs})"
            )
            if eff_tuned:
                star = max(eff_tuned, key=lambda p: p.speedup)
                print(
                    f"composition win: speedup {star.speedup:.3f} at relative "
                    f"power {star.relative_power:.3f} "
                    f"(P={star.setpoint:.0f} @ {star.dvfs})"
                )
            print()


if __name__ == "__main__":
    main()
