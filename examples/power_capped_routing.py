#!/usr/bin/env python
"""Power-capped routing: give the controller a watt budget, not a P.

The paper's conclusion sketches this mode: "a user might specify a
power limit instead of P, and the controller could then adjust itself
in response to direct power observations."  The simulated platform can
observe power directly, so :mod:`repro.cosim` closes that loop — this
example runs the same road-network query under three battery budgets
and shows the servo finding the right parallelism set-point on its
own, then compares against naively guessing P.

Run:
    python examples/power_capped_routing.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveParams, adaptive_sssp
from repro.cosim import PowerTargetParams, power_target_sssp
from repro.experiments.report import banner, format_series, format_table
from repro.experiments.runner import pick_source
from repro.gpusim import get_device, simulate_run
from repro.gpusim.dvfs import default_governor
from repro.graph import cal_like
from repro.sssp import dijkstra, assert_distances_close

SCALE = 0.03
BUDGETS_W = [5.0, 5.8, 6.5]


def main() -> None:
    device = get_device("tk1")
    graph = cal_like(scale=SCALE, seed=9)
    source = pick_source(graph)
    reference = dijkstra(graph, source)
    print(banner("power-capped routing"))
    print(f"{graph!r} on {device.name} (static floor {device.static_power_w} W)")

    rows = []
    histories = {}
    for budget in BUDGETS_W:
        res = power_target_sssp(
            graph,
            source,
            device,
            PowerTargetParams(target_watts=budget, initial_setpoint=400.0),
        )
        assert_distances_close(reference, res.result)
        rows.append(
            {
                "budget (W)": budget,
                "steady power (W)": round(res.steady_state_power(), 2),
                "servo's final P": round(res.final_setpoint, 0),
                "time (ms)": round(res.platform.total_seconds * 1e3, 2),
                "energy (J)": round(res.platform.total_energy_j, 4),
            }
        )
        histories[budget] = res

    print()
    print(banner("watt budget in, set-point out"))
    print(format_table(rows))
    print()
    mid = BUDGETS_W[1]
    print(format_series(f"P trajectory @ {mid} W", histories[mid].setpoint_history))
    print(format_series(f"power EMA @ {mid} W", histories[mid].power_history))

    # what would naively guessing P have cost?
    print()
    print(banner(f"versus guessing P directly (budget {mid} W)"))
    guess_rows = []
    for guess in (50.0, 400.0, 3200.0):
        _, trace, _ = adaptive_sssp(graph, source, AdaptiveParams(setpoint=guess))
        run = simulate_run(trace, device, default_governor(device))
        verdict = (
            "over budget"
            if run.average_power_w > mid * 1.05
            else ("wasteful" if run.average_power_w < mid * 0.85 else "ok")
        )
        guess_rows.append(
            {
                "guessed P": guess,
                "power (W)": round(run.average_power_w, 2),
                "time (ms)": round(run.total_seconds * 1e3, 2),
                "verdict": verdict,
            }
        )
    print(format_table(guess_rows))
    print(
        "\nthe servo lands on the budget without per-input tuning — the"
        "\nsame argument the paper makes for P over delta, one level up."
    )


if __name__ == "__main__":
    main()
