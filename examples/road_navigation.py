#!/usr/bin/env python
"""Road-network routing under an energy budget (simulated Jetson TK1).

The scenario the paper's introduction motivates: an embedded device
computing shortest paths over a road network, where both battery energy
and responsiveness matter.  This example:

1. builds the Cal-like road network and routes from a depot vertex;
2. compares the baseline near+far (with its best fixed delta) against
   the self-tuning controller at three set-points, on the simulated
   TK1 across DVFS operating points;
3. extracts an actual turn-by-turn route to show the API;
4. prints which configuration meets a 5.5 W power budget fastest.

Run:
    python examples/road_navigation.py
"""

from __future__ import annotations

from repro.core import AdaptiveParams, adaptive_sssp
from repro.experiments.report import banner, format_table
from repro.experiments.runner import find_time_minimizing_delta, scaled_setpoints
from repro.gpusim import FixedDVFS, get_device, simulate_run
from repro.gpusim.dvfs import default_governor
from repro.graph import cal_like
from repro.sssp import dijkstra, extract_path, nearfar_sssp

POWER_BUDGET_W = 5.5
SCALE = 0.02


def main() -> None:
    device = get_device("tk1")
    graph = cal_like(scale=SCALE, seed=7)
    depot = 0
    print(banner("road network"))
    print(f"{graph!r} on {device.name}, depot vertex {depot}")

    # a concrete route, to show the path API
    ref = dijkstra(graph, depot, with_pred=True)
    target = int(ref.dist[ref.dist < float("inf")].argmax())
    route = extract_path(ref, target)
    print(
        f"farthest reachable vertex: {target} "
        f"(travel time {ref.dist[target]:.1f}, {len(route)} hops)"
    )
    print(f"route head: {route[:8]} ... tail: {route[-4:]}")

    # candidate configurations
    best_delta, _ = find_time_minimizing_delta(graph, depot, device)
    rows = []
    candidates = []

    _, base_trace = nearfar_sssp(graph, depot, delta=best_delta)
    for label, policy in [
        ("auto", default_governor(device)),
        ("852/924", FixedDVFS(device, 852, 924)),
        ("252/396", FixedDVFS(device, 252, 396)),
    ]:
        run = simulate_run(base_trace, device, policy)
        candidates.append((f"baseline delta={best_delta:.3g} @ {label}", run))

    for setpoint in scaled_setpoints("cal", SCALE):
        _, trace, _ = adaptive_sssp(
            graph, depot, AdaptiveParams(setpoint=setpoint)
        )
        for label, policy in [
            ("auto", default_governor(device)),
            ("252/396", FixedDVFS(device, 252, 396)),
        ]:
            run = simulate_run(trace, device, policy)
            candidates.append((f"self-tuning P={setpoint:.0f} @ {label}", run))

    for name, run in candidates:
        rows.append(
            {
                "configuration": name,
                "time (ms)": round(run.total_seconds * 1e3, 2),
                "avg power (W)": round(run.average_power_w, 2),
                "energy (J)": round(run.total_energy_j, 4),
                "fits budget": "yes" if run.average_power_w <= POWER_BUDGET_W else "no",
            }
        )

    print()
    print(banner(f"configurations vs the {POWER_BUDGET_W} W budget"))
    print(format_table(rows))

    fitting = [
        (name, run)
        for name, run in candidates
        if run.average_power_w <= POWER_BUDGET_W
    ]
    if fitting:
        name, run = min(fitting, key=lambda nr: nr[1].total_seconds)
        print(
            f"\nfastest within budget: {name} "
            f"({run.total_seconds * 1e3:.2f} ms at {run.average_power_w:.2f} W)"
        )
    else:
        print("\nno configuration fits the budget — raise it or lower P")


if __name__ == "__main__":
    main()
